#ifndef INFLUMAX_SERVE_SNAPSHOT_VIEW_H_
#define INFLUMAX_SERVE_SNAPSHOT_VIEW_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/memory.h"
#include "common/status.h"
#include "common/types.h"

namespace influmax {

/// Read-only, zero-copy view of a credit snapshot file
/// (src/serve/snapshot_format.h). Open() memory-maps the file, validates
/// the prelude, section structure, and cross-array index bounds once, and
/// then exposes every section as a typed span pointing straight into the
/// mapping — no hash tables, no copies, no allocation after Open.
///
/// Lookup model (all O(1) or O(log A_u), all hash-free):
///  * user u's slots: [user_offsets()[u], user_offsets()[u+1]) — one slot
///    per action u performed, action ids ascending in slot_action();
///  * SlotOf(u, a): binary search of a in u's slot range;
///  * slot s's credited users: fwd_node()/fwd_credit() at
///    [fwd_begin()[s], fwd_begin()[s] + fwd_count()[s]);
///  * action a's entries are contiguous:
///    [action_entry_begin()[a], action_entry_begin()[a+1]).
///
/// Concurrency: the view is immutable after Open and safe to share across
/// any number of threads; per-thread mutable state lives in
/// SnapshotQueryEngine (src/serve/query_engine.h).
class CreditSnapshotView {
 public:
  CreditSnapshotView() = default;
  CreditSnapshotView(CreditSnapshotView&&) = default;
  CreditSnapshotView& operator=(CreditSnapshotView&&) = default;

  /// Maps and validates `path`. Corruption with the failing byte offset
  /// when the file is truncated, mis-typed, or internally inconsistent.
  static Result<CreditSnapshotView> Open(const std::string& path);

  NodeId num_users() const { return num_users_; }
  ActionId num_actions() const { return num_actions_; }
  /// Total (user, action) participation slots == log tuples scanned.
  std::uint64_t num_slots() const { return num_slots_; }
  /// Live UC credit entries frozen into the snapshot.
  std::uint64_t num_entries() const { return num_entries_; }
  std::uint64_t graph_fingerprint() const { return graph_fingerprint_; }
  std::uint64_t log_fingerprint() const { return log_fingerprint_; }
  /// Truncation threshold lambda the store was scanned with.
  double truncation_threshold() const { return truncation_threshold_; }

  std::span<const std::uint32_t> au() const { return au_; }
  std::span<const std::uint64_t> user_offsets() const {
    return user_offsets_;
  }
  std::span<const ActionId> slot_action() const { return slot_action_; }
  std::span<const double> slot_sc() const { return slot_sc_; }
  std::span<const std::uint64_t> action_entry_begin() const {
    return action_entry_begin_;
  }
  std::span<const std::uint64_t> fwd_begin() const { return fwd_begin_; }
  std::span<const std::uint32_t> fwd_count() const { return fwd_count_; }
  std::span<const std::uint64_t> bwd_begin() const { return bwd_begin_; }
  std::span<const std::uint32_t> bwd_count() const { return bwd_count_; }
  std::span<const NodeId> fwd_node() const { return fwd_node_; }
  std::span<const double> fwd_credit() const { return fwd_credit_; }
  /// Derived division-free gain pool: fwd_quotient()[e] bit-equals
  /// fwd_credit()[e] / au()[fwd_node()[e]] (validated at Open; IEEE
  /// division is deterministic). The gain kernel folds this stream
  /// instead of dividing and gathering per entry (docs/gain_kernel.md).
  std::span<const double> fwd_quotient() const { return fwd_quotient_; }
  std::span<const NodeId> bwd_node() const { return bwd_node_; }
  std::span<const std::uint64_t> bwd_entry() const { return bwd_entry_; }
  std::span<const std::uint32_t> action_size() const { return action_size_; }
  std::span<const std::uint64_t> action_trace_hash() const {
    return action_trace_hash_;
  }
  /// Seeds committed before the snapshot was frozen (commit order).
  std::span<const NodeId> seeds() const { return seeds_; }

  /// Sentinel returned by SlotOf when u never performed a.
  static constexpr std::uint64_t kNoSlot = ~0ULL;

  /// Slot index of (u, a): O(log A_u) binary search, kNoSlot if absent.
  std::uint64_t SlotOf(NodeId u, ActionId a) const;

  /// Serving-side memory footprint: the mapped file (resident pages are
  /// an upper bound; the kernel shares them across processes) — the
  /// number the ROADMAP's truncation-aware memory budgeting targets.
  std::uint64_t ApproxMemoryBytes() const { return file_.size(); }

 private:
  MmapFile file_;

  NodeId num_users_ = 0;
  ActionId num_actions_ = 0;
  std::uint64_t num_slots_ = 0;
  std::uint64_t num_entries_ = 0;
  std::uint64_t graph_fingerprint_ = 0;
  std::uint64_t log_fingerprint_ = 0;
  double truncation_threshold_ = 0.0;

  std::span<const std::uint32_t> au_;
  std::span<const std::uint64_t> user_offsets_;
  std::span<const ActionId> slot_action_;
  std::span<const double> slot_sc_;
  std::span<const std::uint64_t> action_entry_begin_;
  std::span<const std::uint64_t> fwd_begin_;
  std::span<const std::uint32_t> fwd_count_;
  std::span<const std::uint64_t> bwd_begin_;
  std::span<const std::uint32_t> bwd_count_;
  std::span<const NodeId> fwd_node_;
  std::span<const double> fwd_credit_;
  std::span<const double> fwd_quotient_;
  std::span<const NodeId> bwd_node_;
  std::span<const std::uint64_t> bwd_entry_;
  std::span<const std::uint32_t> action_size_;
  std::span<const std::uint64_t> action_trace_hash_;
  std::span<const NodeId> seeds_;
};

}  // namespace influmax

#endif  // INFLUMAX_SERVE_SNAPSHOT_VIEW_H_
