#include "serve/snapshot_view.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "serve/snapshot_format.h"

namespace influmax {
namespace {

/// Bounds-checked typed cursor over the mapped bytes. Every failure
/// carries the byte offset so corrupt snapshots are diagnosable without a
/// hex dump. Alignment of 8-byte payloads is guaranteed by the writer
/// (sections are padded) and re-checked here before any pointer is cast.
class SectionCursor {
 public:
  SectionCursor(const std::byte* data, std::size_t size, std::string path)
      : data_(data), size_(size), path_(std::move(path)) {}

  const Status& status() const { return status_; }
  std::uint64_t offset() const { return offset_; }

  std::uint32_t ReadU32() { return ReadScalar<std::uint32_t>(); }
  std::uint64_t ReadU64() { return ReadScalar<std::uint64_t>(); }
  double ReadDouble() { return ReadScalar<double>(); }

  /// Reads one section: u64 element count (must equal `expected_count`
  /// unless expected_count is kAnyCount, in which case it only must fit
  /// `max_count`), the payload, and the trailing 8-byte-boundary padding.
  template <typename T>
  std::span<const T> ReadSection(const char* name,
                                 std::uint64_t expected_count,
                                 std::uint64_t max_count) {
    const std::uint64_t count = ReadU64();
    if (!status_.ok()) return {};
    if (expected_count != kAnyCount && count != expected_count) {
      Fail("section " + std::string(name) + " has " +
           std::to_string(count) + " elements, header implies " +
           std::to_string(expected_count));
      return {};
    }
    if (count > max_count) {
      Fail("section " + std::string(name) + " element count " +
           std::to_string(count) + " exceeds sanity limit");
      return {};
    }
    // Divide instead of multiplying: `count * sizeof(T)` could wrap for a
    // crafted count and slip past the bounds check.
    if (count > (size_ - offset_) / sizeof(T)) {
      Fail("section " + std::string(name) + " payload of " +
           std::to_string(count) + " elements overruns the file");
      return {};
    }
    const std::uint64_t bytes = count * sizeof(T);
    if (offset_ % alignof(T) != 0) {
      Fail("section " + std::string(name) + " payload is misaligned");
      return {};
    }
    const auto* ptr = reinterpret_cast<const T*>(data_ + offset_);
    offset_ += bytes;
    const std::uint64_t rem = offset_ % 8;
    if (rem != 0) {
      if (8 - rem > size_ - offset_) {
        Fail("section " + std::string(name) + " padding overruns the file");
        return {};
      }
      offset_ += 8 - rem;
    }
    return {ptr, count};
  }

  void Fail(const std::string& message) {
    if (status_.ok()) {
      status_ = Status::Corruption("snapshot '" + path_ +
                                   "': " + message + " (at byte offset " +
                                   std::to_string(offset_) + ")");
    }
  }

  static constexpr std::uint64_t kAnyCount = ~0ULL;

 private:
  template <typename T>
  T ReadScalar() {
    if (!status_.ok()) return T{};
    if (sizeof(T) > size_ - offset_) {
      Fail("truncated: wanted " + std::to_string(sizeof(T)) + " bytes");
      return T{};
    }
    T value;
    std::memcpy(&value, data_ + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  const std::byte* data_;
  std::uint64_t size_;
  std::uint64_t offset_ = 0;
  std::string path_;
  Status status_;
};

}  // namespace

std::uint64_t CreditSnapshotView::SlotOf(NodeId u, ActionId a) const {
  const ActionId* begin = slot_action_.data() + user_offsets_[u];
  const ActionId* end = slot_action_.data() + user_offsets_[u + 1];
  const ActionId* it = std::lower_bound(begin, end, a);
  if (it == end || *it != a) return kNoSlot;
  return static_cast<std::uint64_t>(it - slot_action_.data());
}

Result<CreditSnapshotView> CreditSnapshotView::Open(const std::string& path) {
  auto file = MmapFile::Open(path);
  if (!file.ok()) return file.status();

  CreditSnapshotView view;
  view.file_ = std::move(file).value();
  SectionCursor cursor(view.file_.data(), view.file_.size(), path);

  const std::uint64_t magic = cursor.ReadU64();
  if (cursor.status().ok() && magic != kSnapshotMagic) {
    return Status::Corruption("'" + path + "' is not a credit snapshot "
                              "(bad magic)");
  }
  const std::uint32_t version = cursor.ReadU32();
  if (cursor.status().ok() && version != kSnapshotVersion) {
    return Status::Corruption("snapshot '" + path +
                              "': unsupported version " +
                              std::to_string(version));
  }
  cursor.ReadU32();  // prelude padding
  view.graph_fingerprint_ = cursor.ReadU64();
  view.log_fingerprint_ = cursor.ReadU64();
  view.num_users_ = cursor.ReadU32();
  view.num_actions_ = cursor.ReadU32();
  view.num_slots_ = cursor.ReadU64();
  view.num_entries_ = cursor.ReadU64();
  view.truncation_threshold_ = cursor.ReadDouble();
  INFLUMAX_RETURN_IF_ERROR(cursor.status());
  if (cursor.offset() != kSnapshotPreludeBytes) {
    return Status::Internal("snapshot prelude parser drifted from format");
  }

  const std::uint64_t U = view.num_users_;
  const std::uint64_t A = view.num_actions_;
  const std::uint64_t S = view.num_slots_;
  const std::uint64_t E = view.num_entries_;
  view.au_ = cursor.ReadSection<std::uint32_t>("au", U, U);
  view.user_offsets_ =
      cursor.ReadSection<std::uint64_t>("user_offsets", U + 1, U + 1);
  view.slot_action_ = cursor.ReadSection<ActionId>("slot_action", S, S);
  view.slot_sc_ = cursor.ReadSection<double>("slot_sc", S, S);
  view.action_entry_begin_ =
      cursor.ReadSection<std::uint64_t>("action_entry_begin", A + 1, A + 1);
  view.fwd_begin_ = cursor.ReadSection<std::uint64_t>("fwd_begin", S, S);
  view.fwd_count_ = cursor.ReadSection<std::uint32_t>("fwd_count", S, S);
  view.bwd_begin_ = cursor.ReadSection<std::uint64_t>("bwd_begin", S, S);
  view.bwd_count_ = cursor.ReadSection<std::uint32_t>("bwd_count", S, S);
  view.fwd_node_ = cursor.ReadSection<NodeId>("fwd_node", E, E);
  view.fwd_credit_ = cursor.ReadSection<double>("fwd_credit", E, E);
  view.fwd_quotient_ = cursor.ReadSection<double>("fwd_quotient", E, E);
  view.bwd_node_ = cursor.ReadSection<NodeId>("bwd_node", E, E);
  view.bwd_entry_ = cursor.ReadSection<std::uint64_t>("bwd_entry", E, E);
  view.action_size_ = cursor.ReadSection<std::uint32_t>("action_size", A, A);
  view.action_trace_hash_ =
      cursor.ReadSection<std::uint64_t>("action_trace_hash", A, A);
  view.seeds_ =
      cursor.ReadSection<NodeId>("seeds", SectionCursor::kAnyCount, U);
  INFLUMAX_RETURN_IF_ERROR(cursor.status());

  // Structural validation, once at load time, so the (unchecked) query
  // hot path can trust every index it follows. O(U + S + E).
  const auto uo = view.user_offsets_;
  if (uo[0] != 0 || uo[U] != S) {
    cursor.Fail("user_offsets do not cover the slot range");
    return cursor.status();
  }
  for (std::uint64_t u = 0; u < U; ++u) {
    if (uo[u + 1] < uo[u] || uo[u + 1] - uo[u] != view.au_[u]) {
      cursor.Fail("user_offsets disagree with au at user " +
                  std::to_string(u));
      return cursor.status();
    }
    for (std::uint64_t s = uo[u]; s + 1 < uo[u + 1]; ++s) {
      if (view.slot_action_[s] >= view.slot_action_[s + 1]) {
        cursor.Fail("slot actions not ascending for user " +
                    std::to_string(u));
        return cursor.status();
      }
    }
  }
  const auto aeb = view.action_entry_begin_;
  if (aeb[0] != 0 || aeb[A] != E) {
    cursor.Fail("action_entry_begin does not cover the entry range");
    return cursor.status();
  }
  for (std::uint64_t a = 0; a < A; ++a) {
    if (aeb[a + 1] < aeb[a]) {
      cursor.Fail("action_entry_begin not monotonic at action " +
                  std::to_string(a));
      return cursor.status();
    }
  }
  for (std::uint64_t s = 0; s < S; ++s) {
    const ActionId a = view.slot_action_[s];
    if (a >= A) {
      cursor.Fail("slot " + std::to_string(s) + " references action " +
                  std::to_string(a) + " out of range");
      return cursor.status();
    }
    // Adjacency ranges must stay inside their action's entry slice: the
    // engine's copy-on-write overlay indexes credits by (entry - begin of
    // the slot's action).
    const std::uint64_t fb = view.fwd_begin_[s];
    const std::uint64_t fc = view.fwd_count_[s];
    if (fb < aeb[a] || fb > aeb[a + 1] || fc > aeb[a + 1] - fb) {
      cursor.Fail("forward range of slot " + std::to_string(s) +
                  " leaves its action slice");
      return cursor.status();
    }
    const std::uint64_t bb = view.bwd_begin_[s];
    const std::uint64_t bc = view.bwd_count_[s];
    if (bb > E || bc > E - bb) {
      cursor.Fail("backward range of slot " + std::to_string(s) +
                  " out of bounds");
      return cursor.status();
    }
    for (std::uint64_t j = bb; j < bb + bc; ++j) {
      const std::uint64_t e = view.bwd_entry_[j];
      if (e < aeb[a] || e >= aeb[a + 1]) {
        cursor.Fail("backward record " + std::to_string(j) +
                    " references entry outside its action slice");
        return cursor.status();
      }
    }
  }
  for (std::uint64_t e = 0; e < E; ++e) {
    if (view.fwd_node_[e] >= U || view.bwd_node_[e] >= U) {
      cursor.Fail("entry " + std::to_string(e) +
                  " references a user out of range");
      return cursor.status();
    }
    // The derived quotient pool must bit-equal the on-the-fly division —
    // IEEE division is correctly rounded, so the writer's bits are the
    // only valid ones. Compared bitwise (not ==) so a NaN smuggled into
    // either side is rejected rather than trivially unequal-but-ignored.
    const double expected =
        view.fwd_credit_[e] / view.au_[view.fwd_node_[e]];
    if (std::bit_cast<std::uint64_t>(view.fwd_quotient_[e]) !=
        std::bit_cast<std::uint64_t>(expected)) {
      cursor.Fail("entry " + std::to_string(e) +
                  " quotient disagrees with fwd_credit / au");
      return cursor.status();
    }
  }
  for (NodeId seed : view.seeds_) {
    if (seed >= U) {
      cursor.Fail("seed id " + std::to_string(seed) + " out of range");
      return cursor.status();
    }
  }
  return view;
}

}  // namespace influmax
