#include "serve/query_engine.h"

#include <algorithm>

#include "actionlog/propagation_dag.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "core/credit_store.h"
#include "obs/metrics.h"
#include "serve/snapshot_writer.h"

namespace influmax {

namespace {

// Query-engine telemetry (docs/observability.md). The per-gain metrics
// are fed only by the sampled TimedMarginalGain path, so their counters
// move in units of kObsSampleEvery; the coarse operations record
// exactly. The overlay histograms are recorded at ResetSession — the
// moment the session's copy-on-write footprint is final.
struct EngineMetrics {
  Counter* gain_queries;
  Timer* gain_latency;
  Counter* kernel_exact;
  Counter* kernel_fast;
  Counter* topk_queries;
  Timer* topk_latency;
  Counter* commits;
  Timer* commit_latency;
  Counter* resets;
  Timer* reset_latency;
  Timer* spread_latency;
  Timer* overlay_actions;
  Timer* overlay_bytes;
};

const EngineMetrics& GetEngineMetrics() {
  static const EngineMetrics metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return EngineMetrics{
        reg.FindOrCreateCounter("serve.gain.queries"),
        reg.FindOrCreateTimer("serve.gain.latency"),
        reg.FindOrCreateCounter("serve.kernel.exact_calls"),
        reg.FindOrCreateCounter("serve.kernel.fast_calls"),
        reg.FindOrCreateCounter("serve.topk.queries"),
        reg.FindOrCreateTimer("serve.topk.latency"),
        reg.FindOrCreateCounter("serve.commit.count"),
        reg.FindOrCreateTimer("serve.commit.latency"),
        reg.FindOrCreateCounter("serve.reset.count"),
        reg.FindOrCreateTimer("serve.reset.latency"),
        reg.FindOrCreateTimer("serve.spread.latency"),
        reg.FindOrCreateTimer("serve.overlay.actions"),
        reg.FindOrCreateTimer("serve.overlay.bytes"),
    };
  }();
  return metrics;
}

// thread_local, not per-engine: MarginalGain is const and TopKSeeds
// fans it out over concurrent workers, so a member tick would race.
thread_local std::uint64_t t_gain_tick = 0;

inline bool GainTickFires() {
  return (++t_gain_tick & (kObsSampleEvery - 1)) == 0;
}

}  // namespace

SnapshotQueryEngine::SnapshotQueryEngine(const CreditSnapshotView& view)
    : SnapshotQueryEngine(view, view.au(), view.fwd_quotient()) {}

SnapshotQueryEngine::SnapshotQueryEngine(
    const CreditSnapshotView& view, std::span<const std::uint32_t> au_override)
    : SnapshotQueryEngine(view, au_override, {}) {}

SnapshotQueryEngine::SnapshotQueryEngine(
    const CreditSnapshotView& view, std::span<const std::uint32_t> au_override,
    std::span<const double> quotient_override)
    : view_(&view), au_(au_override), quot_(quotient_override) {
  // Register the metric names up front so scrapes see them from the
  // first query, not only once the sampled probe first fires.
  (void)GetEngineMetrics();
  INFLUMAX_CHECK(au_.size() >= view.num_users());
  INFLUMAX_CHECK(quot_.empty() || quot_.size() == view.num_entries());
  if (quot_.empty()) {
    // An au override redefines every divisor, so the snapshot's stored
    // pool does not apply; reuse it only when the override's divisors
    // match, otherwise derive an engine-owned pool once (the shard
    // router shares one via the quotient_override constructor instead).
    const auto view_au = view.au();
    if (au_.size() == view_au.size() &&
        std::equal(au_.begin(), au_.end(), view_au.begin())) {
      quot_ = view.fwd_quotient();
    } else {
      const auto credit = view.fwd_credit();
      const auto node = view.fwd_node();
      own_quot_.resize(view.num_entries());
      for (std::uint64_t e = 0; e < own_quot_.size(); ++e) {
        own_quot_[e] = credit[e] / au_[node[e]];
      }
      quot_ = own_quot_;
    }
  }
  ovl_offset_.assign(view.num_actions(), kNotOverlaid);
  sc_cur_.assign(view.slot_sc().begin(), view.slot_sc().end());
  sc_dirty_.assign(view.num_slots(), 0);
  is_seed_.assign(view.num_users(), 0);
  for (NodeId s : view.seeds()) is_seed_[s] = 1;
  commit_scratch_.resize(1);
  EnsureScratch(&commit_scratch_[0]);
  memo_gain_.assign(view.num_users(), 0.0);
  memo_stamp_.assign(view.num_users(), 0);
}

void SnapshotQueryEngine::EnsureScratch(CommitScratch* scratch) {
  if (scratch->stamp_epoch.size() < view_->num_users()) {
    scratch->stamp_epoch.assign(view_->num_users(), 0);
    scratch->stamp_credit.assign(view_->num_users(), 0.0);
    scratch->epoch = 0;
  }
}

const double* SnapshotQueryEngine::CreditsOf(ActionId a) const {
  const std::uint64_t off = ovl_offset_[a];
  if (off != kNotOverlaid) return ovl_buf_.data() + off;
  return view_->fwd_credit().data() + view_->action_entry_begin()[a];
}

template <typename TermFn>
void SnapshotQueryEngine::ForEachGainTerm(NodeId x, TermFn&& term) const {
  // Algorithm 4 / Theorem 3, replayed over the flat arrays. The entry
  // iteration order equals the live adjacency order (the snapshot
  // preserves it), and in exact mode each slot folds the precomputed
  // quotient run serially — the same additions as credit / au[node] in
  // the same order (each q[e] bit-equals its division, view-validated) —
  // so every returned gain is bit-identical to
  // CreditDistributionModel::MarginalGain. Fast mode reassociates the
  // per-slot sums within kFastMathRelErrorBound (docs/gain_kernel.md).
  // Overlaid actions carry session-mutated credits the pool does not
  // reflect, so they divide on the fly in both modes — exact always.
  const auto au = au_;
  const std::uint32_t ax = au[x];
  if (ax == 0) return;
  const double inv_ax = 1.0 / ax;

  const auto uo = view_->user_offsets();
  const std::uint64_t slot_begin = uo[x];
  const std::uint64_t slot_end = uo[x + 1];
  const auto slot_action = view_->slot_action();
  const auto fwd_begin = view_->fwd_begin();
  const auto fwd_count = view_->fwd_count();
  const auto fwd_node = view_->fwd_node();
  const auto aeb = view_->action_entry_begin();
  const double* quot = quot_.data();
  const bool fast = kernel_mode_ == GainKernelMode::kFastMath;

  for (std::uint64_t s = slot_begin; s < slot_end; ++s) {
    const double sc_term = 1.0 - sc_cur_[s];
    const std::uint32_t fc = fwd_count[s];
    if (fc == 0) {  // x credits nobody for this action: mg_a(x) = 1/A_x
      term(inv_ax * sc_term);
      continue;
    }
    const std::uint64_t fb = fwd_begin[s];
    const ActionId a = slot_action[s];
    const std::uint64_t off = ovl_offset_[a];
    double mga;
    if (off != kNotOverlaid) {
      const double* credits = ovl_buf_.data() + off;
      const std::uint64_t base = aeb[a];
      mga = inv_ax;
      for (std::uint64_t e = fb; e < fb + fc; ++e) {
        const double credit = credits[e - base];
        if (credit > 0.0) {
          mga += credit / au[fwd_node[e]];
        }
      }
    } else if (fast) {
      mga = inv_ax + SumQuotientsFast(quot + fb, fc);
    } else {
      mga = FoldQuotientsExact(inv_ax, quot + fb, fc);
    }
    term(mga * sc_term);
  }
}

double SnapshotQueryEngine::MarginalGain(NodeId x) const {
  if constexpr (kObsEnabled) {
    if (obs_enabled_ && GainTickFires()) return TimedMarginalGain(x);
  }
  if (x >= view_->num_users() || is_seed_[x]) return 0.0;
  return AccumulateGainTerms(x, 0.0);
}

double SnapshotQueryEngine::TimedMarginalGain(NodeId x) const {
  const std::uint64_t t0 = MonotonicNowNs();
  double gain = 0.0;
  if (x < view_->num_users() && !is_seed_[x]) {
    gain = AccumulateGainTerms(x, 0.0);
  }
  const EngineMetrics& m = GetEngineMetrics();
  m.gain_latency->Record(MonotonicNowNs() - t0);
  m.gain_queries->Add(kObsSampleEvery);
  Counter* kernel = kernel_mode_ == GainKernelMode::kFastMath ? m.kernel_fast
                                                              : m.kernel_exact;
  kernel->Add(kObsSampleEvery);
  return gain;
}

double SnapshotQueryEngine::AccumulateGainTerms(NodeId x, double acc) const {
  ForEachGainTerm(x, [&acc](double term) { acc += term; });
  return acc;
}

void SnapshotQueryEngine::AppendGainTerms(NodeId x,
                                          std::vector<double>* out) const {
  ForEachGainTerm(x, [out](double term) { out->push_back(term); });
}

void SnapshotQueryEngine::CommitOneSlot(
    std::uint64_t s, NodeId x, CommitScratch* scratch,
    std::vector<std::uint64_t>* touched_out) {
  // Algorithm 5 for one slot (one action x performed) against the
  // pre-created copy-on-write overlay. A credit of exactly 0.0 encodes
  // "erased": live entries are always > kZeroEpsilon, and SubtractCredit's
  // epsilon-erase is replayed below, so 0.0 is unambiguous.
  const auto slot_action = view_->slot_action();
  const auto fwd_begin = view_->fwd_begin();
  const auto fwd_count = view_->fwd_count();
  const auto fwd_node = view_->fwd_node();
  const auto bwd_begin = view_->bwd_begin();
  const auto bwd_count = view_->bwd_count();
  const auto bwd_node = view_->bwd_node();
  const auto bwd_entry = view_->bwd_entry();
  const auto aeb = view_->action_entry_begin();

  const std::uint32_t fc = fwd_count[s];
  const std::uint32_t bc = bwd_count[s];
  // Nothing flows through this slot: x credits nobody and nobody
  // credits x for this action, so every loop below is empty — skip
  // before touching the overlay. (Algorithm 5 is a no-op here: no pairs
  // to subtract, no SC folds, an empty row to erase.)
  if (fc == 0 && bc == 0) return;

  const ActionId a = slot_action[s];
  double* ovl = ovl_buf_.data() + ovl_offset_[a];
  const std::uint64_t base = aeb[a];
  const double sc_x = sc_cur_[s];

  // Snapshot the live rows up front, as the live CommitSeed does.
  scratch->credited.clear();
  scratch->creditors.clear();
  const std::uint64_t fb = fwd_begin[s];
  for (std::uint64_t e = fb; e < fb + fc; ++e) {
    const double credit = ovl[e - base];
    if (credit > 0.0) scratch->credited.push_back({fwd_node[e], credit});
  }
  const std::uint64_t bb = bwd_begin[s];
  for (std::uint64_t j = bb; j < bb + bc; ++j) {
    const double credit = ovl[bwd_entry[j] - base];
    if (credit > 0.0) scratch->creditors.push_back({bwd_node[j], credit});
  }

  // Lemma 2: subtract the through-x path product from every
  // (creditor, credited) pair. The live code addresses each pair by
  // hash lookup; here each creditor's forward list is walked once
  // against an epoch-stamped credited set — the same pairs, each
  // subtracted exactly once with the identical delta, no hashing.
  const std::uint64_t epoch = ++scratch->epoch;
  for (const CommitScratch::LiveEntry& cu : scratch->credited) {
    scratch->stamp_epoch[cu.node] = epoch;
    scratch->stamp_credit[cu.node] = cu.credit;
  }
  for (const CommitScratch::LiveEntry& cv : scratch->creditors) {
    // Every creditor of an action participates in it, so its slot must
    // exist; tolerate a crafted file rather than index out of bounds.
    const std::uint64_t sv = view_->SlotOf(cv.node, a);
    if (sv == CreditSnapshotView::kNoSlot) continue;
    const std::uint64_t vb = fwd_begin[sv];
    const std::uint32_t vc = fwd_count[sv];
    for (std::uint64_t e = vb; e < vb + vc; ++e) {
      const NodeId u = fwd_node[e];
      if (u == x) {
        ovl[e - base] = 0.0;  // column erase: drop (creditor -> x)
        continue;
      }
      if (scratch->stamp_epoch[u] != epoch) continue;
      const double credit = ovl[e - base];
      if (credit == 0.0) continue;  // truncated away or already erased
      const double next = credit - cv.credit * scratch->stamp_credit[u];
      ovl[e - base] =
          next <= ActionCreditTable::kZeroEpsilon ? 0.0 : next;
    }
  }
  // Lemma 3: fold x's credit into SC for every user x credits. The slots
  // all belong to action a, so parallel slot updates never collide here.
  for (const CommitScratch::LiveEntry& cu : scratch->credited) {
    const std::uint64_t su = view_->SlotOf(cu.node, a);
    if (su == CreditSnapshotView::kNoSlot) continue;
    if (!sc_dirty_[su]) {
      sc_dirty_[su] = 1;
      touched_out->push_back(su);
    }
    sc_cur_[su] += cu.credit * (1.0 - sc_x);
  }
  // Row erase: x has left the induced subgraph V - S.
  for (std::uint64_t e = fb; e < fb + fc; ++e) {
    ovl[e - base] = 0.0;
  }
}

void SnapshotQueryEngine::CommitSeed(NodeId x) {
  // Algorithm 5 against the copy-on-write overlay. Slots of x reference
  // distinct actions; their updates write disjoint overlay slices and
  // disjoint SC-shadow slots, so after a serial overlay pre-pass (the
  // only ovl_buf_ growth) the slots fan out over gain_threads() workers.
  // Per-worker touched-slot logs are merged back in slot order, so the
  // session state — every overlay credit, every SC value, the rewind log
  // — is bit-identical to the serial commit for any thread count.
  if (x >= view_->num_users() || is_seed_[x]) return;
  std::uint64_t obs_t0 = 0;
  if constexpr (kObsEnabled) {
    if (obs_enabled_) obs_t0 = MonotonicNowNs();
  }
  const auto uo = view_->user_offsets();
  const std::uint64_t slot_begin = uo[x];
  const std::uint64_t slot_end = uo[x + 1];
  const std::size_t num_slots = slot_end - slot_begin;
  if (num_slots > 0) {
    // Overlay pre-pass: create every missing overlay for x's actions in
    // slot order (one ovl_buf_ resize), then fill the copies in
    // parallel — they are disjoint slices of the grown buffer.
    const auto slot_action = view_->slot_action();
    const auto aeb = view_->action_entry_begin();
    fresh_actions_.clear();
    std::uint64_t extra = 0;
    for (std::uint64_t s = slot_begin; s < slot_end; ++s) {
      const ActionId a = slot_action[s];
      if (ovl_offset_[a] == kNotOverlaid) {
        fresh_actions_.push_back(a);
        extra += aeb[a + 1] - aeb[a];
      }
    }
    const std::size_t workers = std::min(
        EffectiveThreadCount(gain_threads_), num_slots);
    if (extra > 0) {
      std::uint64_t off = ovl_buf_.size();
      ovl_buf_.resize(off + extra);
      for (const ActionId a : fresh_actions_) {
        ovl_offset_[a] = off;
        ovl_actions_.push_back(a);
        off += aeb[a + 1] - aeb[a];
      }
      ParallelForDynamic(
          fresh_actions_.size(), workers, [&](std::size_t, std::size_t i) {
            const ActionId a = fresh_actions_[i];
            const double* base = view_->fwd_credit().data() + aeb[a];
            std::copy(base, base + (aeb[a + 1] - aeb[a]),
                      ovl_buf_.data() + ovl_offset_[a]);
          });
    }
    if (workers <= 1) {
      for (std::uint64_t s = slot_begin; s < slot_end; ++s) {
        CommitOneSlot(s, x, &commit_scratch_[0], &sc_touched_);
      }
    } else {
      if (commit_scratch_.size() < workers) commit_scratch_.resize(workers);
      touched_slices_.resize(num_slots);
      ParallelForDynamic(
          num_slots, workers, [&](std::size_t t, std::size_t i) {
            CommitScratch& scratch = commit_scratch_[t];
            EnsureScratch(&scratch);
            const std::uint64_t offset = scratch.sc_touched.size();
            CommitOneSlot(slot_begin + i, x, &scratch, &scratch.sc_touched);
            touched_slices_[i] = {
                static_cast<std::uint32_t>(t), offset,
                static_cast<std::uint32_t>(scratch.sc_touched.size() -
                                           offset)};
          });
      for (const ArenaSlice& slice : touched_slices_) {
        const std::uint64_t* entries =
            commit_scratch_[slice.worker].sc_touched.data() + slice.offset;
        sc_touched_.insert(sc_touched_.end(), entries,
                           entries + slice.count);
      }
      for (CommitScratch& scratch : commit_scratch_) {
        scratch.sc_touched.clear();
      }
    }
  }
  is_seed_[x] = 1;
  committed_.push_back(x);
  if constexpr (kObsEnabled) {
    if (obs_enabled_) {
      const EngineMetrics& m = GetEngineMetrics();
      m.commits->Increment();
      m.commit_latency->Record(MonotonicNowNs() - obs_t0);
    }
  }
}

double SnapshotQueryEngine::SpreadOf(std::span<const NodeId> seeds) {
  // Theorem 3 telescopes: sigma_cd(S) is the sum of the marginal gains
  // of committing S one seed at a time (in the given order).
  std::uint64_t obs_t0 = 0;
  if constexpr (kObsEnabled) {
    if (obs_enabled_) obs_t0 = MonotonicNowNs();
  }
  ResetSession();
  double total = 0.0;
  for (NodeId seed : seeds) {
    total += MarginalGain(seed);
    CommitSeed(seed);
  }
  if constexpr (kObsEnabled) {
    if (obs_enabled_) {
      GetEngineMetrics().spread_latency->Record(MonotonicNowNs() - obs_t0);
    }
  }
  return total;
}

SnapshotSeedSelection SnapshotQueryEngine::TopKSeeds(NodeId k,
                                                     double spread_budget) {
  // Algorithm 3 (greedy + CELF lazy-forward), the exact queue discipline
  // of CreditDistributionModel::SelectSeeds — literally: both passes and
  // the consumption loop are the shared RunCelfTopK, so the two (and
  // the shard router) cannot drift. Both
  // evaluation passes run on gain_threads_ workers: MarginalGain is
  // const (pure reads of view + overlay + SC shadow) and no mutating
  // method runs while a pass is in flight, so the passes are race-free
  // and the results — seeds, gains, evaluation counts — are identical
  // for any thread count (docs/parallelism.md). All scratch is
  // engine-owned and only ever grows, preserving the allocation-free
  // steady state.
  std::uint64_t obs_t0 = 0;
  if constexpr (kObsEnabled) {
    if (obs_enabled_) obs_t0 = MonotonicNowNs();
  }
  ResetSession();
  SnapshotSeedSelection selection;
  const auto au = au_;
  RunCelfTopK(
      k, spread_budget, EffectiveThreadCount(gain_threads_),
      view_->num_users(),
      [this](std::size_t total,
             const std::function<void(std::size_t, std::size_t)>& body) {
        ParallelForDynamic(total, gain_threads_, body);
      },
      [au](NodeId x) { return au[x] != 0; },
      [this](NodeId x) { return MarginalGain(x); },
      [this](NodeId x) { CommitSeed(x); }, &heap_, &memo_gain_,
      &memo_stamp_, &batch_, &gains_, &selection);
  if constexpr (kObsEnabled) {
    if (obs_enabled_) {
      const EngineMetrics& m = GetEngineMetrics();
      m.topk_queries->Increment();
      m.topk_latency->Record(MonotonicNowNs() - obs_t0);
    }
  }
  return selection;
}

void SnapshotQueryEngine::ResetSession() {
  std::uint64_t obs_t0 = 0;
  if constexpr (kObsEnabled) {
    if (obs_enabled_) {
      obs_t0 = MonotonicNowNs();
      // The session's copy-on-write footprint is final here: record it
      // before the rewind clears it.
      const EngineMetrics& m = GetEngineMetrics();
      m.overlay_actions->Record(ovl_actions_.size());
      m.overlay_bytes->Record(ovl_buf_.size() * sizeof(double));
    }
  }
  for (ActionId a : ovl_actions_) ovl_offset_[a] = kNotOverlaid;
  ovl_actions_.clear();
  ovl_buf_.clear();  // keeps capacity: steady-state queries do not allocate
  const auto base_sc = view_->slot_sc();
  for (std::uint64_t s : sc_touched_) {
    sc_cur_[s] = base_sc[s];
    sc_dirty_[s] = 0;
  }
  sc_touched_.clear();
  for (NodeId x : committed_) is_seed_[x] = 0;
  committed_.clear();
  if constexpr (kObsEnabled) {
    if (obs_enabled_) {
      const EngineMetrics& m = GetEngineMetrics();
      m.resets->Increment();
      m.reset_latency->Record(MonotonicNowNs() - obs_t0);
    }
  }
}

std::uint64_t SnapshotQueryEngine::ApproxMemoryBytes() const {
  auto bytes_of = [](const auto& v) {
    return static_cast<std::uint64_t>(v.capacity()) * sizeof(v[0]);
  };
  std::uint64_t scratch_bytes = 0;
  for (const CommitScratch& scratch : commit_scratch_) {
    scratch_bytes += bytes_of(scratch.credited) + bytes_of(scratch.creditors) +
                     bytes_of(scratch.stamp_epoch) +
                     bytes_of(scratch.stamp_credit) +
                     bytes_of(scratch.sc_touched);
  }
  return bytes_of(own_quot_) + bytes_of(ovl_offset_) + bytes_of(ovl_buf_) +
         bytes_of(ovl_actions_) + bytes_of(sc_cur_) + bytes_of(sc_touched_) +
         bytes_of(sc_dirty_) + bytes_of(is_seed_) + bytes_of(committed_) +
         scratch_bytes + bytes_of(fresh_actions_) +
         bytes_of(touched_slices_) + bytes_of(memo_gain_) +
         bytes_of(memo_stamp_) + bytes_of(heap_) + bytes_of(batch_) +
         bytes_of(gains_);
}

Status IncrementalRescan(const CreditSnapshotView& view, const Graph& graph,
                         const ActionLog& log,
                         const DirectCreditModel& credit_model,
                         const CdConfig& config, const std::string& out_path,
                         RescanStats* stats) {
  if (FingerprintGraph(graph) != view.graph_fingerprint()) {
    return Status::InvalidArgument(
        "rescan: graph does not fingerprint-match the snapshot");
  }
  if (log.num_users() != view.num_users()) {
    return Status::InvalidArgument(
        "rescan: log user space does not match the snapshot (" +
        std::to_string(log.num_users()) + " vs " +
        std::to_string(view.num_users()) + ")");
  }
  if (log.num_actions() < view.num_actions()) {
    return Status::Corruption(
        "rescan: log has fewer actions than the snapshot");
  }
  if (!view.seeds().empty()) {
    return Status::FailedPrecondition(
        "rescan: snapshot has committed seeds; Algorithm 5's removals "
        "cannot be replayed forward — rebuild from a post-Build store");
  }
  if (config.truncation_threshold != view.truncation_threshold()) {
    return Status::InvalidArgument(
        "rescan: truncation threshold " +
        std::to_string(config.truncation_threshold) +
        " differs from the snapshot's " +
        std::to_string(view.truncation_threshold()));
  }

  // Classify every action: unchanged (copy verbatim), extended (replay
  // the appended suffix), or new (scan from scratch). Any rewritten
  // history fails the per-action prefix hash and is rejected.
  const ActionId old_actions = view.num_actions();
  const ActionId new_actions = log.num_actions();
  std::vector<ActionId> changed;
  std::vector<std::uint64_t> changed_index(new_actions, ~0ULL);
  RescanStats local_stats;
  for (ActionId a = 0; a < old_actions; ++a) {
    const auto trace = log.ActionTrace(a);
    const std::uint32_t old_size = view.action_size()[a];
    if (trace.size() < old_size) {
      return Status::Corruption("rescan: action " + std::to_string(a) +
                                " shrank from " + std::to_string(old_size) +
                                " to " + std::to_string(trace.size()) +
                                " tuples");
    }
    if (HashActionTrace(trace.first(old_size)) !=
        view.action_trace_hash()[a]) {
      return Status::Corruption(
          "rescan: action " + std::to_string(a) +
          " is not an append-only extension of the snapshotted trace");
    }
    if (trace.size() > old_size) {
      changed_index[a] = changed.size();
      changed.push_back(a);
      ++local_stats.rescanned_actions;
      local_stats.replayed_tuples += trace.size() - old_size;
    } else {
      ++local_stats.unchanged_actions;
    }
  }
  for (ActionId a = old_actions; a < new_actions; ++a) {
    changed_index[a] = changed.size();
    changed.push_back(a);
    ++local_stats.new_actions;
    local_stats.replayed_tuples += log.ActionTrace(a).size();
  }

  // Rebuild only the changed tables: reconstruct the frozen credits in
  // their original first-touch order, then resume Algorithm 2 at the
  // first appended position. Actions are independent, so this
  // parallelizes like Build().
  std::vector<ActionCreditTable> tables(changed.size());
  ParallelForDynamic(
      changed.size(), config.scan_threads,
      [&](std::size_t /*thread*/, std::size_t i) {
        const ActionId a = changed[i];
        const auto trace = log.ActionTrace(a);
        const std::uint32_t old_size =
            a < old_actions ? view.action_size()[a] : 0;
        ActionCreditTable& table = tables[i];
        for (std::uint32_t t = 0; t < old_size; ++t) {
          const NodeId v = trace[t].user;
          const std::uint64_t s = view.SlotOf(v, a);
          const std::uint64_t fb = view.fwd_begin()[s];
          for (std::uint64_t e = fb; e < fb + view.fwd_count()[s]; ++e) {
            table.AddCredit(v, view.fwd_node()[e], view.fwd_credit()[e]);
          }
        }
        const PropagationDag dag = BuildPropagationDag(graph, trace);
        std::vector<CreditEntry> scratch;
        ScanDagRange(dag, credit_model, config.truncation_threshold,
                     /*begin_pos=*/old_size, &table, &scratch);
      });

  // Assemble the new snapshot: fresh slot universe from the new log,
  // rebuilt tables where something changed, verbatim (entry-rebased)
  // copies of the mmap'd arrays everywhere else.
  SnapshotData data;
  InitSnapshotSlots(log, &data);
  data.truncation_threshold = config.truncation_threshold;
  data.graph_fingerprint = view.graph_fingerprint();
  data.log_fingerprint = FingerprintActionLog(log);
  for (ActionId a = 0; a < new_actions; ++a) {
    const auto trace = log.ActionTrace(a);
    data.action_entry_begin[a] = data.fwd_node.size();
    data.action_size[a] = static_cast<std::uint32_t>(trace.size());
    data.action_trace_hash[a] = HashActionTrace(trace);
    if (changed_index[a] != ~0ULL) {
      AppendActionFromTable(tables[changed_index[a]], a, trace, &data);
      continue;
    }
    const std::uint64_t old_base = view.action_entry_begin()[a];
    const std::uint64_t new_base = data.action_entry_begin[a];
    for (const ActionTuple& t : trace) {
      const std::uint64_t old_s = view.SlotOf(t.user, a);
      const std::uint64_t new_s = data.SlotOf(t.user, a);
      data.fwd_begin[new_s] = data.fwd_node.size();
      data.fwd_count[new_s] = view.fwd_count()[old_s];
      const std::uint64_t fb = view.fwd_begin()[old_s];
      for (std::uint64_t e = fb; e < fb + view.fwd_count()[old_s]; ++e) {
        data.fwd_node.push_back(view.fwd_node()[e]);
        data.fwd_credit.push_back(view.fwd_credit()[e]);
      }
      data.bwd_begin[new_s] = data.bwd_node.size();
      data.bwd_count[new_s] = view.bwd_count()[old_s];
      const std::uint64_t bb = view.bwd_begin()[old_s];
      for (std::uint64_t j = bb; j < bb + view.bwd_count()[old_s]; ++j) {
        data.bwd_node.push_back(view.bwd_node()[j]);
        data.bwd_entry.push_back(view.bwd_entry()[j] - old_base + new_base);
      }
    }
  }
  data.action_entry_begin[new_actions] = data.fwd_node.size();

  INFLUMAX_RETURN_IF_ERROR(WriteSnapshotFile(data, out_path));
  if (stats != nullptr) *stats = local_stats;
  return Status::OK();
}

}  // namespace influmax
