#include "serve/snapshot_writer.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/flat_hash.h"
#include "serve/snapshot_format.h"

namespace influmax {
namespace {

std::uint64_t HashChain(std::uint64_t h, std::uint64_t v) {
  return HashMix64(h ^ HashMix64(v));
}

std::uint64_t PairKey(NodeId v, NodeId u) {
  return (static_cast<std::uint64_t>(v) << 32) | u;
}

template <typename T>
void WriteSection(BinaryWriter* writer, const std::vector<T>& values) {
  writer->WriteVector(values);
  writer->PadToAlignment(8);
}

}  // namespace

std::uint64_t SnapshotData::SlotOf(NodeId u, ActionId a) const {
  const auto begin = slot_action.begin() +
                     static_cast<std::ptrdiff_t>(user_offsets[u]);
  const auto end = slot_action.begin() +
                   static_cast<std::ptrdiff_t>(user_offsets[u + 1]);
  const auto it = std::lower_bound(begin, end, a);
  assert(it != end && *it == a && "SlotOf: (u, a) pair not in the log");
  return static_cast<std::uint64_t>(it - slot_action.begin());
}

std::uint64_t FingerprintGraph(const Graph& graph) {
  std::uint64_t h = HashChain(0x67726170685F6670ULL, graph.num_nodes());
  h = HashChain(h, graph.num_edges());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    h = HashChain(h, graph.OutDegree(u));
  }
  for (NodeId target : graph.out_targets()) h = HashChain(h, target);
  return h;
}

std::uint64_t HashActionTrace(std::span<const ActionTuple> trace) {
  std::uint64_t h = HashChain(0x74726163655F6670ULL, trace.size());
  for (const ActionTuple& t : trace) {
    h = HashChain(h, t.user);
    h = HashChain(h, std::bit_cast<std::uint64_t>(t.time));
  }
  return h;
}

std::uint64_t FingerprintTraceHashes(
    NodeId num_users, std::span<const std::uint64_t> trace_hashes) {
  std::uint64_t h = HashChain(0x6C6F675F66707630ULL, num_users);
  h = HashChain(h, trace_hashes.size());
  for (std::uint64_t trace_hash : trace_hashes) {
    h = HashChain(h, trace_hash);
  }
  return h;
}

std::uint64_t FingerprintActionLog(const ActionLog& log) {
  std::vector<std::uint64_t> hashes;
  hashes.reserve(log.num_actions());
  for (ActionId a = 0; a < log.num_actions(); ++a) {
    hashes.push_back(HashActionTrace(log.ActionTrace(a)));
  }
  return FingerprintTraceHashes(log.num_users(), hashes);
}

void AppendActionFromTable(const ActionCreditTable& table, ActionId a,
                           std::span<const ActionTuple> trace,
                           SnapshotData* data) {
  // First pass, forward lists: participants in trace order, each list in
  // live adjacency (first-touch) order with stale ids dropped — the exact
  // sequence the live MarginalGain sums over. Entry indices are recorded
  // so the backward pass can reference the shared (v, u) pair.
  FlatHashMap<std::uint64_t, std::uint64_t> entry_of;
  for (const ActionTuple& t : trace) {
    const NodeId v = t.user;
    const std::uint64_t s = data->SlotOf(v, a);
    data->fwd_begin[s] = data->fwd_node.size();
    std::uint32_t count = 0;
    for (NodeId u : table.CreditedUsers(v)) {
      const double credit = table.Credit(v, u);
      if (credit > 0.0) {
        *entry_of.TryEmplace(PairKey(v, u)).first = data->fwd_node.size();
        data->fwd_node.push_back(u);
        data->fwd_credit.push_back(credit);
        ++count;
      }
    }
    data->fwd_count[s] = count;
  }
  // Second pass, backward lists, canonicalized to ascending creditor id
  // (live backward order is insertion-history-dependent and never affects
  // results; a canonical order makes snapshot bytes reproducible).
  std::vector<NodeId> creditors;
  for (const ActionTuple& t : trace) {
    const NodeId u = t.user;
    const std::uint64_t s = data->SlotOf(u, a);
    creditors.clear();
    for (NodeId w : table.Creditors(u)) {
      if (table.Credit(w, u) > 0.0) creditors.push_back(w);
    }
    std::sort(creditors.begin(), creditors.end());
    data->bwd_begin[s] = data->bwd_node.size();
    data->bwd_count[s] = static_cast<std::uint32_t>(creditors.size());
    for (NodeId w : creditors) {
      const std::uint64_t* entry = entry_of.Find(PairKey(w, u));
      assert(entry != nullptr && "backward record without forward entry");
      data->bwd_node.push_back(w);
      data->bwd_entry.push_back(*entry);
    }
  }
}

void InitSnapshotSlots(const ActionLog& log, SnapshotData* data) {
  const NodeId num_users = log.num_users();
  const ActionId num_actions = log.num_actions();
  const std::uint64_t num_slots = log.num_tuples();
  data->num_users = num_users;
  data->num_actions = num_actions;
  data->au.resize(num_users);
  data->user_offsets.resize(num_users + 1);
  data->user_offsets[0] = 0;
  for (NodeId u = 0; u < num_users; ++u) {
    data->au[u] = log.ActionsPerformedBy(u);
    data->user_offsets[u + 1] = data->user_offsets[u] + data->au[u];
  }
  data->slot_action.resize(num_slots);
  data->slot_sc.assign(num_slots, 0.0);
  for (NodeId u = 0; u < num_users; ++u) {
    std::uint64_t s = data->user_offsets[u];
    for (const UserAction& ua : log.UserActions(u)) {
      data->slot_action[s] = ua.action;
      ++s;
    }
  }
  data->fwd_begin.assign(num_slots, 0);
  data->fwd_count.assign(num_slots, 0);
  data->bwd_begin.assign(num_slots, 0);
  data->bwd_count.assign(num_slots, 0);
  data->action_entry_begin.assign(num_actions + 1, 0);
  data->action_size.assign(num_actions, 0);
  data->action_trace_hash.assign(num_actions, 0);
}

SnapshotData BuildSnapshotData(const UserCreditStore& store,
                               const Graph& graph, const ActionLog& log,
                               double truncation_threshold,
                               std::span<const NodeId> committed_seeds) {
  SnapshotData data;
  InitSnapshotSlots(log, &data);
  const NodeId num_users = log.num_users();
  const ActionId num_actions = log.num_actions();
  data.truncation_threshold = truncation_threshold;
  data.graph_fingerprint = FingerprintGraph(graph);
  data.log_fingerprint = FingerprintActionLog(log);
  for (NodeId u = 0; u < num_users; ++u) {
    std::uint64_t s = data.user_offsets[u];
    for (const UserAction& ua : log.UserActions(u)) {
      data.slot_sc[s] = store.SetCredit(u, ua.action);
      ++s;
    }
  }
  for (ActionId a = 0; a < num_actions; ++a) {
    const auto trace = log.ActionTrace(a);
    data.action_entry_begin[a] = data.fwd_node.size();
    data.action_size[a] = static_cast<std::uint32_t>(trace.size());
    data.action_trace_hash[a] = HashActionTrace(trace);
    AppendActionFromTable(store.table(a), a, trace, &data);
  }
  data.action_entry_begin[num_actions] = data.fwd_node.size();
  data.seeds.assign(committed_seeds.begin(), committed_seeds.end());
  return data;
}

namespace {

Status WriteSnapshotFileImpl(const SnapshotData& data,
                             const std::string& path) {
  BinaryWriter writer(path, kSnapshotMagic, kSnapshotVersion);
  INFLUMAX_RETURN_IF_ERROR(writer.status());
  writer.set_failpoint("snapshot.write");
  writer.WriteU32(0);  // pad the prelude to an 8-byte boundary
  writer.WriteU64(data.graph_fingerprint);
  writer.WriteU64(data.log_fingerprint);
  writer.WriteU32(data.num_users);
  writer.WriteU32(data.num_actions);
  writer.WriteU64(data.slot_action.size());
  writer.WriteU64(data.fwd_node.size());
  writer.WriteDouble(data.truncation_threshold);
  if (writer.status().ok() &&
      writer.bytes_written() != kSnapshotPreludeBytes) {
    return Status::Internal(
        "snapshot prelude layout drifted: wrote " +
        std::to_string(writer.bytes_written()) + " bytes, format pins " +
        std::to_string(kSnapshotPreludeBytes));
  }
  WriteSection(&writer, data.au);
  WriteSection(&writer, data.user_offsets);
  WriteSection(&writer, data.slot_action);
  WriteSection(&writer, data.slot_sc);
  WriteSection(&writer, data.action_entry_begin);
  WriteSection(&writer, data.fwd_begin);
  WriteSection(&writer, data.fwd_count);
  WriteSection(&writer, data.bwd_begin);
  WriteSection(&writer, data.bwd_count);
  WriteSection(&writer, data.fwd_node);
  WriteSection(&writer, data.fwd_credit);
  // kFwdQuotient is derived here rather than carried in SnapshotData, so
  // every producer — full build, incremental rescan, shard slicer — gets
  // a pool consistent with its own au section by construction. IEEE
  // division is correctly rounded, hence deterministic: the view re-checks
  // these exact bits at open, and the engine's exact fold over them
  // replays the live model's additions bit for bit (docs/gain_kernel.md).
  // Note a shard blob's pool divides by its *local* au; engines serving
  // shards under a global-au override get a derived pool from
  // OpenShardedSnapshot instead.
  std::vector<double> fwd_quot(data.fwd_node.size());
  for (std::size_t e = 0; e < fwd_quot.size(); ++e) {
    fwd_quot[e] = data.fwd_credit[e] / data.au[data.fwd_node[e]];
  }
  WriteSection(&writer, fwd_quot);
  WriteSection(&writer, data.bwd_node);
  WriteSection(&writer, data.bwd_entry);
  WriteSection(&writer, data.action_size);
  WriteSection(&writer, data.action_trace_hash);
  WriteSection(&writer, data.seeds);
  INFLUMAX_RETURN_IF_ERROR(writer.Finish());
  // Durability point of the swap protocol (docs/durability.md): a
  // manifest fingerprint of this blob is only trustworthy once its
  // bytes are on stable storage, so every producer syncs here, before
  // any manifest names the file.
  INFLUMAX_FAILPOINT("snapshot.fsync");
  return SyncFileToDisk(path);
}

}  // namespace

Status WriteSnapshotFile(const SnapshotData& data, const std::string& path) {
  const Status status = WriteSnapshotFileImpl(data, path);
  if (!status.ok()) {
    // No partial outputs on the error path — a half-written blob left
    // in a generation dir looks exactly like a crash artifact to the
    // recovery scan. (An injected kTornCrash bypasses this by design:
    // a real crash gets no cleanup either.)
    std::remove(path.c_str());
  }
  return status;
}

Status WriteCreditSnapshot(const CreditDistributionModel& model,
                           const std::string& path) {
  const SnapshotData data = BuildSnapshotData(
      model.store(), model.graph(), model.log(),
      model.config().truncation_threshold, model.committed_seeds());
  return WriteSnapshotFile(data, path);
}

Status CreditDistributionModel::WriteSnapshot(const std::string& path) const {
  return WriteCreditSnapshot(*this, path);
}

}  // namespace influmax
