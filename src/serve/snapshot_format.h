#ifndef INFLUMAX_SERVE_SNAPSHOT_FORMAT_H_
#define INFLUMAX_SERVE_SNAPSHOT_FORMAT_H_

#include <cstdint>

namespace influmax {

/// On-disk contract of the credit-store snapshot (see docs/serving.md for
/// the narrative spec). One file, little-endian, not endian-portable —
/// the same convention as the graph/log binary formats.
///
/// Layout:
///   [0, 64)   fixed prelude (all fields 8-byte aligned or padded):
///     u64 magic            "SNAPLFMX"
///     u32 version
///     u32 pad (zero)
///     u64 graph_fingerprint
///     u64 log_fingerprint
///     u32 num_users        U
///     u32 num_actions      A
///     u64 num_slots        S  (== action-log tuples; one per (user, action))
///     u64 num_entries      E  (live UC credit entries)
///     f64 truncation_threshold   (lambda the store was scanned with)
///   [64, ...) sections, in the fixed order of SnapshotSection. Each
///     section is a u64 element count followed by the raw element payload,
///     then zero padding to the next 8-byte boundary, so every u64/double
///     payload is 8-byte aligned within the (page-aligned) mapping.
inline constexpr std::uint64_t kSnapshotMagic = 0x584D464C50414E53ULL;
/// Version 2 added kFwdQuotient, the derived division-free gain pool
/// (docs/gain_kernel.md). Version 1 files have no quotient section and
/// are rejected; rebuild or rescan to upgrade.
inline constexpr std::uint32_t kSnapshotVersion = 2;
inline constexpr std::uint64_t kSnapshotPreludeBytes = 64;

/// Section order. Element types and expected counts (in terms of the
/// prelude's U/A/S/E) are fixed per section:
///   kAu              u32[U]    A_u, actions performed per user
///   kUserOffsets     u64[U+1]  user -> slot range (user-major CSR)
///   kSlotAction      u32[S]    action id of each slot, ascending per user
///   kSlotSc          f64[S]    SC baseline Gamma_{S,x}(a) per slot
///   kActionEntryBegin u64[A+1] action -> entry range (entries action-major)
///   kFwdBegin        u64[S]    slot -> first credited-user entry
///   kFwdCount        u32[S]    slot -> credited-user entry count
///   kBwdBegin        u64[S]    slot -> first creditor record
///   kBwdCount        u32[S]    slot -> creditor record count
///   kFwdNode         u32[E]    credited user of each entry
///   kFwdCredit       f64[E]    Gamma_{v,u}(a) of each entry
///   kFwdQuotient     f64[E]    fwd_credit[e] / au[fwd_node[e]], derived
///                              at write time so the exact gain fold needs
///                              no division or gather (docs/gain_kernel.md);
///                              validated bit-for-bit against the division
///                              at open (IEEE division is deterministic)
///   kBwdNode         u32[E]    creditor node of each backward record
///   kBwdEntry        u64[E]    forward-entry index of the same (v, u) pair
///   kActionSize      u32[A]    scanned trace length per action
///   kActionTraceHash u64[A]    order-sensitive hash of the scanned trace
///   kSeeds           u32[*]    seeds committed before the snapshot
enum class SnapshotSection : std::uint32_t {
  kAu = 0,
  kUserOffsets,
  kSlotAction,
  kSlotSc,
  kActionEntryBegin,
  kFwdBegin,
  kFwdCount,
  kBwdBegin,
  kBwdCount,
  kFwdNode,
  kFwdCredit,
  kFwdQuotient,
  kBwdNode,
  kBwdEntry,
  kActionSize,
  kActionTraceHash,
  kSeeds,
  kNumSections,
};

}  // namespace influmax

#endif  // INFLUMAX_SERVE_SNAPSHOT_FORMAT_H_
