#ifndef INFLUMAX_SERVE_QUERY_ENGINE_H_
#define INFLUMAX_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/cd_model.h"
#include "core/celf.h"
#include "serve/gain_kernel.h"
#include "serve/snapshot_view.h"

namespace influmax {

/// Seed-selection result of the snapshot query engine; field-for-field
/// the shape of CreditDistributionModel::SeedSelection, and — on the same
/// log, graph, and lambda — bit-for-bit the same values.
struct SnapshotSeedSelection {
  std::vector<NodeId> seeds;              // in pick order
  std::vector<double> marginal_gains;     // gain of each pick
  std::vector<double> cumulative_spread;  // sigma_cd of each prefix
  std::uint64_t gain_evaluations = 0;     // CELF computeMG calls
};

/// Non-destructive CELF greedy over a CreditSnapshotView.
///
/// Where the live model's SelectSeeds() consumes its credit store (one
/// shot per Build), the engine answers any number of queries against one
/// immutable snapshot: committed seeds live in a per-engine
/// copy-on-write overlay (one contiguous credit slice per touched
/// action) plus an SC shadow array, both rewound in O(touched) by
/// ResetSession(). The query path is allocation-free in steady state and
/// performs no hash-table lookups: node -> slot is an O(log A_u) binary
/// search over the mmap'd CSR, everything else is direct indexing.
///
/// Results are bit-identical to the live model because the snapshot
/// preserves forward-adjacency order (floating-point summation order),
/// the overlay replicates SubtractCredit's epsilon-erase (entries at 0.0
/// are "erased"), and the greedy replays Algorithm 3's exact queue
/// discipline including tie-breaks.
///
/// Concurrency contract: one engine per thread. The underlying view is
/// shared freely; an engine's session state is neither locked nor
/// thread-safe (see docs/serving.md). TopKSeeds can additionally fan its
/// internal marginal-gain passes out over set_gain_threads() workers —
/// safe because MarginalGain is read-only — without changing any result
/// bit (docs/parallelism.md).
class SnapshotQueryEngine {
 public:
  /// Workspaces are sized to the view once, here. `view` must outlive
  /// the engine. Seeds frozen into the snapshot are permanent: they
  /// survive ResetSession() (their credit updates are already baked into
  /// the snapshot's UC/SC arrays).
  explicit SnapshotQueryEngine(const CreditSnapshotView& view);

  /// Shard-serving constructor (docs/sharding.md): `au_override` (length
  /// >= the view's user count, outliving the engine) replaces the view's
  /// own A_u array in every gain formula. An action-range shard stores
  /// only the slots of its own actions, so its local au says "actions in
  /// this shard" — but Theorem 3 divides by the user's *global* action
  /// count, which the ShardRouter supplies from the shard manifest.
  SnapshotQueryEngine(const CreditSnapshotView& view,
                      std::span<const std::uint32_t> au_override);

  /// Like the au-override constructor, but with the matching quotient
  /// pool (q[e] = fwd_credit[e] / au_override[fwd_node[e]], length ==
  /// the view's entry count, outliving the engine) supplied by the
  /// caller — OpenShardedSnapshot derives one per shard so every router
  /// session shares it instead of re-deriving O(E) doubles per engine.
  /// An empty span makes the engine derive (and own) the pool itself.
  SnapshotQueryEngine(const CreditSnapshotView& view,
                      std::span<const std::uint32_t> au_override,
                      std::span<const double> quotient_override);

  /// Marginal gain sigma_cd(S + x) - sigma_cd(S) of x against the
  /// current session seed set S (Algorithm 4 / Theorem 3); 0 when x is
  /// a seed or never acted. Non-destructive, and const: it only reads
  /// the view, the overlay, and the SC shadow, so concurrent calls are
  /// safe whenever no mutating method (CommitSeed / SpreadOf /
  /// TopKSeeds / ResetSession) runs — the property the parallel gain
  /// passes below rely on.
  double MarginalGain(NodeId x) const;

  /// The gain fold underneath MarginalGain, exposed for the ShardRouter
  /// (docs/sharding.md): folds x's per-slot terms
  /// `mg_a(x) * (1 - SC(x, a))` into `acc` in ascending-action order and
  /// returns the result — MarginalGain(x) is AccumulateGainTerms(x, 0.0)
  /// behind the seed/inactive checks. Because a router's shards cover
  /// contiguous ascending action ranges, chaining the fold through every
  /// shard's engine replays the monolithic engine's floating-point
  /// addition sequence exactly; summing per-shard partials instead would
  /// reassociate it. Const like MarginalGain, same concurrency contract.
  /// The caller owns the seed/range checks (the router keeps its own
  /// global seed set).
  double AccumulateGainTerms(NodeId x, double acc) const;

  /// Appends x's per-slot gain terms to `*out` (same terms the fold
  /// above adds, in the same order) so a router can compute shards'
  /// terms in parallel and fold the buffered terms serially — identical
  /// bits, fan-out latency (docs/sharding.md).
  void AppendGainTerms(NodeId x, std::vector<double>* out) const;

  /// Commits x into the session seed set (Algorithm 5 against the
  /// overlay). No-op when x is already a seed. The per-action updates
  /// touch disjoint overlay slices and disjoint SC-shadow slots, so they
  /// fan out over gain_threads() workers (after a serial overlay
  /// pre-pass), with per-worker touched-slot logs merged in action order
  /// — bit-identical to the serial commit for any thread count
  /// (docs/parallelism.md). With the default gain_threads() == 1 the
  /// serial path runs and no per-worker scratch is ever allocated.
  void CommitSeed(NodeId x);

  /// sigma_cd of `seeds` (committed in order over a fresh session; the
  /// session is left holding them, so follow-up MarginalGain calls
  /// answer "gain given this set").
  double SpreadOf(std::span<const NodeId> seeds);

  /// CELF greedy top-k from a fresh session: replays Algorithm 3 and
  /// matches CreditDistributionModel::SelectSeeds(k) exactly. A finite
  /// `spread_budget` additionally stops before any pick that would push
  /// cumulative spread beyond the budget ("best seeds under budget").
  /// The session is left holding the selection.
  SnapshotSeedSelection TopKSeeds(
      NodeId k,
      double spread_budget = std::numeric_limits<double>::infinity());

  /// Rewinds the session to the snapshot's base state in O(touched).
  void ResetSession();

  /// Worker threads for TopKSeeds' marginal-gain passes (the initial
  /// CELF pass and batched stale re-evaluations), 0 = all hardware
  /// threads. Defaults to 1 — serving deployments run one engine per
  /// thread, and an engine that spawns by default would oversubscribe
  /// them. Results are bit-identical for any value; see
  /// docs/parallelism.md.
  void set_gain_threads(std::size_t threads) { gain_threads_ = threads; }
  std::size_t gain_threads() const { return gain_threads_; }

  /// Gain kernel for every query this engine answers — MarginalGain,
  /// both CELF passes, the router's chained fold (src/serve/gain_kernel.h,
  /// docs/gain_kernel.md). kExact (default) keeps the bit-identity
  /// contract; kFastMath vectorizes the per-slot quotient sums within
  /// kFastMathRelErrorBound. Overlaid actions always take the exact
  /// divide path (their precomputed quotients are stale), so committed
  /// sessions stay exact in both modes. Not a concurrent-safe setter:
  /// set it between queries, like the other session mutations.
  void set_kernel_mode(GainKernelMode mode) { kernel_mode_ = mode; }
  GainKernelMode kernel_mode() const { return kernel_mode_; }

  /// Telemetry switch (src/obs/, docs/observability.md): when on (the
  /// default), queries record into MetricsRegistry::Global() —
  /// MarginalGain through a sampled 1-in-kObsSampleEvery latency probe,
  /// the coarse operations (TopKSeeds / CommitSeed / ResetSession /
  /// SpreadOf) exactly. BM_MetricsOverhead's baseline row turns it off;
  /// builds with INFLUMAX_OBS_OFF compile all of it out regardless.
  void set_obs_enabled(bool enabled) { obs_enabled_ = enabled; }
  bool obs_enabled() const { return obs_enabled_; }

  /// Seeds committed in this session (excluding snapshot-frozen ones).
  std::span<const NodeId> session_seeds() const { return committed_; }

  /// Heap bytes of the engine's workspaces (overlay high-water included);
  /// the per-thread cost to add on top of the shared view mapping.
  std::uint64_t ApproxMemoryBytes() const;

 private:
  /// Per-worker scratch of the (possibly parallel) CommitSeed: row
  /// snapshots, the epoch-stamped credited set of the slot under update,
  /// and — on the parallel path — the deferred touched-SC-slot log.
  /// Slot 0 exists from construction (the serial path uses it); further
  /// slots appear on the first parallel commit and are reused across
  /// commits.
  struct CommitScratch {
    struct LiveEntry {
      NodeId node;
      double credit;
    };
    std::vector<LiveEntry> credited;
    std::vector<LiveEntry> creditors;
    // Credited-user stamps (epoch-tagged so clearing is free), sized [U]
    // lazily by EnsureScratch.
    std::vector<std::uint64_t> stamp_epoch;
    std::vector<double> stamp_credit;
    std::uint64_t epoch = 0;
    std::vector<std::uint64_t> sc_touched;  // parallel path: deferred log
  };

  /// Credits of action a, through the overlay when present, indexed by
  /// (entry - action_entry_begin[a]).
  const double* CreditsOf(ActionId a) const;

  /// Algorithm 5 for one slot of x (one action): Lemma 2 subtractions +
  /// column erase against the action's (pre-created) overlay, Lemma 3 SC
  /// folds, row erase. Touched SC slots are logged to `*touched_out`
  /// (&sc_touched_ on the serial path; the scratch's own log on the
  /// parallel path, merged in action order afterwards).
  void CommitOneSlot(std::uint64_t s, NodeId x, CommitScratch* scratch,
                     std::vector<std::uint64_t>* touched_out);

  /// Sizes a scratch's stamp arrays to [U] on first use.
  void EnsureScratch(CommitScratch* scratch);

  /// Calls `term(value)` for each of x's slots in ascending-action
  /// order; shared by the fold, the term buffer, and MarginalGain.
  template <typename TermFn>
  void ForEachGainTerm(NodeId x, TermFn&& term) const;

  /// MarginalGain's sampled slow path: the same gain, clock-timed, with
  /// the deferred counters flushed in units of kObsSampleEvery.
  double TimedMarginalGain(NodeId x) const;

  const CreditSnapshotView* view_;

  // A_u divisors for every gain formula: the view's au section, or the
  // router-supplied global override (see the sharding constructor).
  std::span<const std::uint32_t> au_;

  // Precomputed q[e] = fwd_credit[e] / au_[fwd_node[e]] ([E], matching
  // au_): the view's stored pool, a caller-shared override, or own_quot_
  // when the engine had to derive it (au override without a pool).
  std::span<const double> quot_;
  std::vector<double> own_quot_;
  GainKernelMode kernel_mode_ = GainKernelMode::kExact;
  bool obs_enabled_ = true;

  // Copy-on-write credit overlay: per-action offset into ovl_buf_
  // (kNotOverlaid when the action is untouched this session).
  static constexpr std::uint64_t kNotOverlaid = ~0ULL;
  std::vector<std::uint64_t> ovl_offset_;  // [A]
  std::vector<double> ovl_buf_;            // bump-allocated slices
  std::vector<ActionId> ovl_actions_;      // touched, for O(touched) reset

  // SC shadow: base values copied at construction, per-slot undo log.
  std::vector<double> sc_cur_;             // [S]
  std::vector<std::uint64_t> sc_touched_;  // slots to rewind
  std::vector<std::uint8_t> sc_dirty_;     // [S] dedup flag for the log

  // Session seed set. Snapshot-frozen seeds are marked here once at
  // construction and never appear in seed_touched_.
  std::vector<std::uint8_t> is_seed_;      // [U]
  std::vector<NodeId> committed_;          // session commits, in order

  // CommitSeed workspaces: scratch per worker (see CommitScratch), the
  // overlay pre-pass's fresh-action list, and the parallel path's
  // per-action ArenaSlice refs for the deterministic touched-log merge.
  std::vector<CommitScratch> commit_scratch_;
  std::vector<ActionId> fresh_actions_;
  std::vector<ArenaSlice> touched_slices_;

  // CELF speculation memo (TopKSeeds): gain of a node re-evaluated in a
  // parallel batch, valid only while |S| + 1 == the stamp.
  std::size_t gain_threads_ = 1;
  std::vector<double> memo_gain_;           // [U]
  std::vector<std::uint64_t> memo_stamp_;   // [U]

  // Reused scratch (never shrunk, so steady-state queries do not
  // allocate).
  std::vector<CelfQueueEntry> heap_;
  std::vector<CelfQueueEntry> batch_;
  std::vector<double> gains_;  // initial-pass gather array
};

/// Statistics of one IncrementalRescan run.
struct RescanStats {
  ActionId unchanged_actions = 0;  // copied verbatim from the snapshot
  ActionId rescanned_actions = 0;  // old actions with appended tuples
  ActionId new_actions = 0;        // actions absent from the snapshot
  std::uint64_t replayed_tuples = 0;  // activations actually re-scanned
};

/// Replays only the log records appended since `view` was frozen and
/// writes the resulting (full, self-contained) snapshot to `out_path`.
///
/// `log` must be an append-only extension of the snapshotted log: same
/// users, same dense ids for old actions, and each old action's scanned
/// trace must be a prefix of its new trace (verified per action against
/// the snapshot's trace hashes — any rewrite of history is rejected as
/// Corruption). `graph` must fingerprint-match the snapshot, `config`'s
/// truncation threshold must equal the snapshot's lambda, and the
/// snapshot must not contain committed seeds (their Algorithm 5 updates
/// cannot be replayed forward). Unchanged actions are copied from the
/// mmap'd arrays without rebuilding anything; extended actions rebuild
/// their table from the snapshot and resume Algorithm 2 at the first
/// appended position — bit-identical to a full rescan of the new log.
Status IncrementalRescan(const CreditSnapshotView& view, const Graph& graph,
                         const ActionLog& log,
                         const DirectCreditModel& credit_model,
                         const CdConfig& config, const std::string& out_path,
                         RescanStats* stats = nullptr);

}  // namespace influmax

#endif  // INFLUMAX_SERVE_QUERY_ENGINE_H_
