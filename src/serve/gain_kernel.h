#ifndef INFLUMAX_SERVE_GAIN_KERNEL_H_
#define INFLUMAX_SERVE_GAIN_KERNEL_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace influmax {

/// The gain kernel: how a slot's quotient run — the precomputed
/// q[e] = credit[e] / au[fwd_node[e]] pool of snapshot format v2
/// (src/serve/snapshot_format.h, docs/gain_kernel.md) — is summed into
/// the marginal-gain fold of Theorem 3.
///
///  * kExact (default): serial left-to-right fold, the exact addition
///    sequence of the live model. Bit-identical results; still
///    division-free and gather-free thanks to the pool.
///  * kFastMath: vectorized multi-accumulator sum (AVX2 when the CPU has
///    it, unrolled scalar otherwise). Reassociates the additions, so the
///    result can differ from exact in the last bits; because every
///    quotient is non-negative, the relative error of a run of n terms
///    is bounded by n * 2^-52 — kFastMathRelErrorBound covers any run up
///    to ~4 million entries, far beyond real stores.
enum class GainKernelMode { kExact, kFastMath };

/// Documented relative-error bound of kFastMath vs kExact per gain:
/// |fast - exact| <= kFastMathRelErrorBound * exact. Derivation in
/// docs/gain_kernel.md; the randomized differential test asserts it.
inline constexpr double kFastMathRelErrorBound = 1e-9;

/// Which SumQuotientsFast implementation is live. kAuto is only an input
/// to ForceGainKernelBackend (re-run detection); Active... never returns
/// it.
enum class GainKernelBackend { kAuto, kScalar, kAvx2 };

/// Exact serial fold: acc + q[0] + q[1] + ... in index order, one IEEE
/// addition per element — the same sequence the live model performs.
inline double FoldQuotientsExact(double acc, const double* q,
                                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc += q[i];
  return acc;
}

/// Vectorized sum of q[0..n) with reassociated additions; see
/// kFastMathRelErrorBound. Runtime-dispatched on first use: AVX2 when
/// __builtin_cpu_supports says so and INFLUMAX_KERNEL_FORCE is not
/// "scalar", the unrolled scalar fallback otherwise. Thread-safe.
double SumQuotientsFast(const double* q, std::size_t n);

/// Backend SumQuotientsFast currently dispatches to.
GainKernelBackend ActiveGainKernelBackend();

/// Pins the dispatch (kAvx2 silently degrades to kScalar on CPUs without
/// it; kAuto restores detection). For tests and CI, which must exercise
/// both branches regardless of the build host.
void ForceGainKernelBackend(GainKernelBackend backend);

const char* GainKernelModeName(GainKernelMode mode);
const char* GainKernelBackendName(GainKernelBackend backend);

/// Parses the CLIs' --kernel flag value: "exact" | "fast".
Result<GainKernelMode> ParseGainKernelMode(const std::string& name);

}  // namespace influmax

#endif  // INFLUMAX_SERVE_GAIN_KERNEL_H_
