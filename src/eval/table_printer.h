#ifndef INFLUMAX_EVAL_TABLE_PRINTER_H_
#define INFLUMAX_EVAL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace influmax {

/// Column-aligned ASCII tables for the experiment harnesses — the bench
/// binaries print the same rows the paper's tables/figures report.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders with a header underline and right-padded columns.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the point.
std::string FormatDouble(double value, int precision = 2);

/// Formats a half-open interval "[lo,hi)" (used for RMSE bin labels).
std::string FormatInterval(double lo, double hi, int precision = 0);

/// Renders an (x, y) series as gnuplot-pasteable lines under a title,
/// mirroring the paper's figure data.
std::string FormatSeries(const std::string& title,
                         const std::vector<double>& x,
                         const std::vector<double>& y);

}  // namespace influmax

#endif  // INFLUMAX_EVAL_TABLE_PRINTER_H_
