#include "eval/table_printer.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace influmax {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatInterval(double lo, double hi, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[%.*f,%.*f)", precision, lo, precision,
                hi);
  return buf;
}

std::string FormatSeries(const std::string& title,
                         const std::vector<double>& x,
                         const std::vector<double>& y) {
  assert(x.size() == y.size());
  std::ostringstream out;
  out << "# " << title << "\n";
  for (std::size_t i = 0; i < x.size(); ++i) {
    out << FormatDouble(x[i], 4) << "\t" << FormatDouble(y[i], 4) << "\n";
  }
  return out.str();
}

}  // namespace influmax
