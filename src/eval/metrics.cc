#include "eval/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "common/flat_hash.h"

namespace influmax {

std::vector<RmseBin> ComputeBinnedRmse(const std::vector<double>& actual,
                                       const std::vector<double>& predicted,
                                       double bin_width) {
  assert(actual.size() == predicted.size());
  assert(bin_width > 0.0);
  std::map<std::int64_t, std::pair<double, int>> bins;  // index -> (sse, n)
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const auto index = static_cast<std::int64_t>(actual[i] / bin_width);
    const double err = predicted[i] - actual[i];
    auto& [sse, n] = bins[index];
    sse += err * err;
    ++n;
  }
  std::vector<RmseBin> out;
  out.reserve(bins.size());
  for (const auto& [index, acc] : bins) {
    RmseBin bin;
    bin.lower = static_cast<double>(index) * bin_width;
    bin.upper = bin.lower + bin_width;
    bin.count = acc.second;
    bin.rmse = std::sqrt(acc.first / acc.second);
    out.push_back(bin);
  }
  return out;
}

double ComputeRmse(const std::vector<double>& actual,
                   const std::vector<double>& predicted) {
  assert(actual.size() == predicted.size());
  if (actual.empty()) return 0.0;
  double sse = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double err = predicted[i] - actual[i];
    sse += err * err;
  }
  return std::sqrt(sse / actual.size());
}

double ComputeMae(const std::vector<double>& actual,
                  const std::vector<double>& predicted) {
  assert(actual.size() == predicted.size());
  if (actual.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    sum += std::abs(predicted[i] - actual[i]);
  }
  return sum / actual.size();
}

std::vector<CapturePoint> ComputeCaptureCurve(
    const std::vector<double>& actual, const std::vector<double>& predicted,
    double max_error, int steps) {
  assert(actual.size() == predicted.size());
  assert(steps > 0);
  std::vector<double> abs_errors(actual.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    abs_errors[i] = std::abs(predicted[i] - actual[i]);
  }
  std::sort(abs_errors.begin(), abs_errors.end());

  std::vector<CapturePoint> curve;
  curve.reserve(steps);
  for (int s = 1; s <= steps; ++s) {
    const double tolerance = max_error * s / steps;
    const auto captured = static_cast<double>(
        std::upper_bound(abs_errors.begin(), abs_errors.end(), tolerance) -
        abs_errors.begin());
    curve.push_back({tolerance, abs_errors.empty()
                                    ? 0.0
                                    : captured / abs_errors.size()});
  }
  return curve;
}

int SeedIntersectionSize(const std::vector<NodeId>& a,
                         const std::vector<NodeId>& b) {
  FlatHashSet<NodeId> set;
  set.Reserve(a.size());
  for (NodeId x : a) set.Insert(x);
  int count = 0;
  for (NodeId x : b) {
    if (set.Erase(x)) ++count;  // erase-on-hit also dedupes b
  }
  return count;
}

std::vector<std::vector<int>> SeedIntersectionMatrix(
    const std::vector<std::vector<NodeId>>& seed_sets) {
  const std::size_t n = seed_sets.size();
  std::vector<std::vector<int>> matrix(n, std::vector<int>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const int size = SeedIntersectionSize(seed_sets[i], seed_sets[j]);
      matrix[i][j] = size;
      matrix[j][i] = size;
    }
  }
  return matrix;
}

}  // namespace influmax
