#ifndef INFLUMAX_EVAL_SPREAD_PREDICTION_H_
#define INFLUMAX_EVAL_SPREAD_PREDICTION_H_

#include <functional>
#include <string>
#include <vector>

#include "actionlog/action_log.h"
#include "common/status.h"
#include "graph/graph.h"

namespace influmax {

/// The spread-prediction experiment of Sections 3 and 6: for every
/// propagation in the *test* log, take its initiators (the users who
/// performed the action before any of their neighbors) as the seed set;
/// the ground-truth "actual spread" is the propagation size; each method
/// predicts sigma_m(initiators), and the errors are binned (Figures 2-4).

/// A named spread predictor: model name + sigma estimate for a seed set.
struct SpreadPredictor {
  std::string name;
  std::function<double(const std::vector<NodeId>&)> predict;
};

/// One test propagation's outcome.
struct PredictionSample {
  ActionId test_action = 0;          // dense id in the test log
  std::vector<NodeId> initiators;    // ground-truth seed set
  double actual_spread = 0.0;        // propagation size
  std::vector<double> predicted;     // aligned with predictor order
};

struct SpreadPredictionResult {
  std::vector<std::string> predictor_names;
  std::vector<PredictionSample> samples;

  /// Column extraction helpers for the metrics functions.
  std::vector<double> Actuals() const;
  std::vector<double> PredictionsOf(std::size_t predictor_index) const;
};

/// Runs all predictors on (up to `max_traces`, 0 = all) test
/// propagations. Traces with no initiator (cannot happen with strict-time
/// DAGs, kept as a guard) or no participants are skipped.
Result<SpreadPredictionResult> RunSpreadPrediction(
    const Graph& graph, const ActionLog& test_log,
    const std::vector<SpreadPredictor>& predictors,
    std::size_t max_traces = 0);

}  // namespace influmax

#endif  // INFLUMAX_EVAL_SPREAD_PREDICTION_H_
