#ifndef INFLUMAX_EVAL_METRICS_H_
#define INFLUMAX_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace influmax {

/// Evaluation metrics used by the paper's figures: binned RMSE between
/// predicted and actual spread (Figures 2-3), error-capture curves
/// (Figure 4), and seed-set intersections (Table 2, Figure 5).

/// One bin of the RMSE-vs-actual-spread plots. Propagations are grouped
/// by actual spread ("bins are defined at multiples of 100 / 20").
struct RmseBin {
  double lower = 0.0;   // inclusive
  double upper = 0.0;   // exclusive
  int count = 0;        // samples in the bin
  double rmse = 0.0;
};

/// Bins samples by `actual` with width `bin_width` and computes the RMSE
/// of `predicted` inside each bin. Empty bins are omitted.
std::vector<RmseBin> ComputeBinnedRmse(const std::vector<double>& actual,
                                       const std::vector<double>& predicted,
                                       double bin_width);

/// Overall root-mean-squared error.
double ComputeRmse(const std::vector<double>& actual,
                   const std::vector<double>& predicted);

/// Mean absolute error.
double ComputeMae(const std::vector<double>& actual,
                  const std::vector<double>& predicted);

/// One point of Figure 4: the fraction of samples whose absolute
/// prediction error is <= abs_error.
struct CapturePoint {
  double abs_error = 0.0;
  double ratio = 0.0;
};

/// Capture curve over `steps` evenly spaced error tolerances in
/// (0, max_error].
std::vector<CapturePoint> ComputeCaptureCurve(
    const std::vector<double>& actual, const std::vector<double>& predicted,
    double max_error, int steps);

/// |a intersect b| for seed sets (inputs need not be sorted).
int SeedIntersectionSize(const std::vector<NodeId>& a,
                         const std::vector<NodeId>& b);

/// Pairwise intersection matrix over several seed sets, as reported in
/// Table 2 and Figure 5 (entry [i][j] = |S_i intersect S_j|).
std::vector<std::vector<int>> SeedIntersectionMatrix(
    const std::vector<std::vector<NodeId>>& seed_sets);

}  // namespace influmax

#endif  // INFLUMAX_EVAL_METRICS_H_
