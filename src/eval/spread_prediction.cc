#include "eval/spread_prediction.h"

#include "actionlog/propagation_dag.h"

namespace influmax {

std::vector<double> SpreadPredictionResult::Actuals() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const PredictionSample& s : samples) out.push_back(s.actual_spread);
  return out;
}

std::vector<double> SpreadPredictionResult::PredictionsOf(
    std::size_t predictor_index) const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const PredictionSample& s : samples) {
    out.push_back(s.predicted[predictor_index]);
  }
  return out;
}

Result<SpreadPredictionResult> RunSpreadPrediction(
    const Graph& graph, const ActionLog& test_log,
    const std::vector<SpreadPredictor>& predictors,
    std::size_t max_traces) {
  if (test_log.num_users() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "spread prediction: test log user space does not match graph");
  }
  if (predictors.empty()) {
    return Status::InvalidArgument("spread prediction: no predictors given");
  }

  SpreadPredictionResult result;
  for (const SpreadPredictor& p : predictors) {
    result.predictor_names.push_back(p.name);
  }

  const ActionId limit =
      max_traces == 0
          ? test_log.num_actions()
          : static_cast<ActionId>(
                std::min<std::size_t>(max_traces, test_log.num_actions()));
  for (ActionId a = 0; a < limit; ++a) {
    const auto trace = test_log.ActionTrace(a);
    if (trace.empty()) continue;
    const PropagationDag dag = BuildPropagationDag(graph, trace);
    PredictionSample sample;
    sample.test_action = a;
    sample.initiators = dag.InitiatorUsers();
    if (sample.initiators.empty()) continue;
    sample.actual_spread = static_cast<double>(trace.size());
    sample.predicted.reserve(predictors.size());
    for (const SpreadPredictor& p : predictors) {
      sample.predicted.push_back(p.predict(sample.initiators));
    }
    result.samples.push_back(std::move(sample));
  }
  return result;
}

}  // namespace influmax
