#include "im/greedy.h"

#include <numeric>
#include <queue>

namespace influmax {
namespace {

std::vector<NodeId> AllNodes(NodeId n) {
  std::vector<NodeId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), 0u);
  return nodes;
}

GreedyResult RunPlainGreedy(SpreadOracle& oracle, NodeId k,
                            const std::vector<NodeId>& candidates) {
  GreedyResult result;
  std::vector<bool> chosen(oracle.num_nodes(), false);
  double current_spread = 0.0;
  std::vector<NodeId> trial;

  while (result.seeds.size() < k) {
    double best_gain = 0.0;
    NodeId best_node = kInvalidNode;
    double best_spread = current_spread;
    for (NodeId x : candidates) {
      if (chosen[x]) continue;
      trial = result.seeds;
      trial.push_back(x);
      const double spread = oracle.EstimateSpread(trial);
      ++result.oracle_calls;
      const double gain = spread - current_spread;
      if (best_node == kInvalidNode || gain > best_gain) {
        best_gain = gain;
        best_node = x;
        best_spread = spread;
      }
    }
    if (best_node == kInvalidNode || best_gain <= 0.0) break;
    chosen[best_node] = true;
    result.seeds.push_back(best_node);
    result.marginal_gains.push_back(best_gain);
    result.cumulative_spread.push_back(best_spread);
    current_spread = best_spread;
  }
  return result;
}

GreedyResult RunCelfGreedy(SpreadOracle& oracle, NodeId k,
                           const std::vector<NodeId>& candidates) {
  struct QueueEntry {
    double gain;
    NodeId node;
    NodeId iteration;
    bool operator<(const QueueEntry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return node > other.node;
    }
  };

  GreedyResult result;
  std::priority_queue<QueueEntry> queue;
  std::vector<NodeId> trial;
  for (NodeId x : candidates) {
    const double spread = oracle.EstimateSpread({x});
    ++result.oracle_calls;
    queue.push({spread, x, 0});
  }

  double current_spread = 0.0;
  while (result.seeds.size() < k && !queue.empty()) {
    QueueEntry top = queue.top();
    queue.pop();
    const NodeId size = static_cast<NodeId>(result.seeds.size());
    if (top.iteration == size) {
      if (top.gain <= 0.0) break;
      result.seeds.push_back(top.node);
      result.marginal_gains.push_back(top.gain);
      current_spread += top.gain;
      result.cumulative_spread.push_back(current_spread);
    } else {
      trial = result.seeds;
      trial.push_back(top.node);
      top.gain = oracle.EstimateSpread(trial) - current_spread;
      ++result.oracle_calls;
      top.iteration = size;
      queue.push(top);
    }
  }
  return result;
}

// CELF++ (Goyal, Lu & Lakshmanan, WWW 2011): alongside the marginal gain
// mg1 w.r.t. the current seed set S, each entry carries mg2, the gain
// w.r.t. S + {best candidate seen while mg1 was computed}. If that best
// candidate is indeed the next seed, mg1 can be refreshed from mg2 with
// no oracle call at all.
GreedyResult RunCelfPlusPlus(SpreadOracle& oracle, NodeId k,
                             const std::vector<NodeId>& candidates) {
  struct QueueEntry {
    double mg1;
    double mg2;
    NodeId node;
    NodeId prev_best;
    NodeId iteration;  // |S| when mg1 was computed
    bool mg2_valid;
    bool operator<(const QueueEntry& other) const {
      if (mg1 != other.mg1) return mg1 < other.mg1;
      return node > other.node;
    }
  };

  GreedyResult result;
  std::priority_queue<QueueEntry> queue;
  std::vector<NodeId> trial;

  // Initial pass. `round_best` tracks the highest-gain candidate seen so
  // far in the current round; mg2 is evaluated against it.
  NodeId round_best = kInvalidNode;
  double round_best_sigma = 0.0;  // sigma(S + round_best)
  for (NodeId x : candidates) {
    QueueEntry entry;
    entry.node = x;
    entry.iteration = 0;
    entry.mg1 = oracle.EstimateSpread({x});
    ++result.oracle_calls;
    if (round_best != kInvalidNode) {
      entry.prev_best = round_best;
      entry.mg2 = oracle.EstimateSpread({round_best, x}) - round_best_sigma;
      ++result.oracle_calls;
      entry.mg2_valid = true;
    } else {
      entry.prev_best = kInvalidNode;
      entry.mg2 = 0.0;
      entry.mg2_valid = false;
    }
    if (round_best == kInvalidNode || entry.mg1 > round_best_sigma) {
      round_best = x;
      round_best_sigma = entry.mg1;  // S is empty: sigma({x}) == gain
    }
    queue.push(entry);
  }

  double current_spread = 0.0;
  NodeId last_seed = kInvalidNode;
  // Per-round state for mg2 evaluation.
  double round_best_gain = 0.0;
  bool round_best_sigma_known = false;

  while (result.seeds.size() < k && !queue.empty()) {
    QueueEntry top = queue.top();
    queue.pop();
    const NodeId size = static_cast<NodeId>(result.seeds.size());
    if (top.iteration == size) {
      if (top.mg1 <= 0.0) break;
      result.seeds.push_back(top.node);
      result.marginal_gains.push_back(top.mg1);
      current_spread += top.mg1;
      result.cumulative_spread.push_back(current_spread);
      last_seed = top.node;
      round_best = kInvalidNode;
      round_best_gain = 0.0;
      round_best_sigma_known = false;
      continue;
    }

    if (top.mg2_valid && top.prev_best == last_seed &&
        top.iteration + 1 == size) {
      // The set mg2 was computed against IS the current seed set.
      top.mg1 = top.mg2;
      top.mg2_valid = false;
    } else {
      trial = result.seeds;
      trial.push_back(top.node);
      top.mg1 = oracle.EstimateSpread(trial) - current_spread;
      ++result.oracle_calls;
      if (round_best != kInvalidNode && round_best != top.node) {
        if (!round_best_sigma_known) {
          trial = result.seeds;
          trial.push_back(round_best);
          round_best_sigma = oracle.EstimateSpread(trial);
          ++result.oracle_calls;
          round_best_sigma_known = true;
        }
        trial = result.seeds;
        trial.push_back(round_best);
        trial.push_back(top.node);
        top.mg2 = oracle.EstimateSpread(trial) - round_best_sigma;
        ++result.oracle_calls;
        top.prev_best = round_best;
        top.mg2_valid = true;
      } else {
        top.mg2_valid = false;
      }
    }
    top.iteration = size;
    if (round_best == kInvalidNode || top.mg1 > round_best_gain) {
      round_best = top.node;
      round_best_gain = top.mg1;
      round_best_sigma_known = false;
    }
    queue.push(top);
  }
  return result;
}

}  // namespace

GreedyResult SelectSeedsGreedy(SpreadOracle& oracle, NodeId k,
                               const GreedyConfig& config) {
  const std::vector<NodeId>& candidates =
      config.candidates.empty() ? AllNodes(oracle.num_nodes())
                                : config.candidates;
  // With a noiseless submodular oracle all variants return identical
  // seeds; they differ only in how many oracle calls they spend.
  switch (config.variant) {
    case GreedyVariant::kPlain:
      return RunPlainGreedy(oracle, k, candidates);
    case GreedyVariant::kCelf:
      return RunCelfGreedy(oracle, k, candidates);
    case GreedyVariant::kCelfPlusPlus:
      return RunCelfPlusPlus(oracle, k, candidates);
  }
  return RunCelfGreedy(oracle, k, candidates);
}

}  // namespace influmax
