#ifndef INFLUMAX_IM_SPREAD_ORACLE_H_
#define INFLUMAX_IM_SPREAD_ORACLE_H_

#include <vector>

#include "common/types.h"
#include "core/cd_evaluator.h"
#include "graph/graph.h"
#include "propagation/monte_carlo.h"

namespace influmax {

/// Interface the generic greedy/CELF optimizer maximizes over: an
/// estimator of the expected spread sigma_m(S) under some propagation
/// model m. Implementations may keep scratch state (EstimateSpread is
/// non-const); they must be deterministic for a fixed configuration so
/// experiments replay.
class SpreadOracle {
 public:
  virtual ~SpreadOracle() = default;

  /// Estimated sigma_m(seeds).
  virtual double EstimateSpread(const std::vector<NodeId>& seeds) = 0;

  /// Size of the candidate universe (nodes are 0..num_nodes()-1).
  virtual NodeId num_nodes() const = 0;
};

/// sigma_IC via Monte Carlo — the standard approach the paper compares
/// against (Kempe et al. with simulations).
class IcMonteCarloOracle final : public SpreadOracle {
 public:
  IcMonteCarloOracle(const Graph& g, const EdgeProbabilities& p,
                     const MonteCarloConfig& config)
      : graph_(&g), probs_(&p), config_(config) {}

  double EstimateSpread(const std::vector<NodeId>& seeds) override {
    return EstimateIcSpread(*graph_, *probs_, seeds, config_).mean;
  }

  NodeId num_nodes() const override { return graph_->num_nodes(); }

 private:
  const Graph* graph_;
  const EdgeProbabilities* probs_;
  MonteCarloConfig config_;
};

/// sigma_LT via Monte Carlo.
class LtMonteCarloOracle final : public SpreadOracle {
 public:
  LtMonteCarloOracle(const Graph& g, const EdgeProbabilities& w,
                     const MonteCarloConfig& config)
      : graph_(&g), weights_(&w), config_(config) {}

  double EstimateSpread(const std::vector<NodeId>& seeds) override {
    return EstimateLtSpread(*graph_, *weights_, seeds, config_).mean;
  }

  NodeId num_nodes() const override { return graph_->num_nodes(); }

 private:
  const Graph* graph_;
  const EdgeProbabilities* weights_;
  MonteCarloConfig config_;
};

/// sigma_cd through the DAG evaluator — lets the *generic* greedy run
/// under the CD objective too (the property tests use this to check that
/// the specialized Algorithm 3-5 pipeline matches a from-scratch greedy).
class CdOracle final : public SpreadOracle {
 public:
  /// `evaluator` must outlive this oracle.
  explicit CdOracle(const CdSpreadEvaluator& evaluator)
      : evaluator_(&evaluator) {}

  double EstimateSpread(const std::vector<NodeId>& seeds) override {
    return evaluator_->Spread(seeds);
  }

  NodeId num_nodes() const override { return evaluator_->num_users(); }

 private:
  const CdSpreadEvaluator* evaluator_;
};

}  // namespace influmax

#endif  // INFLUMAX_IM_SPREAD_ORACLE_H_
