#ifndef INFLUMAX_IM_BASELINES_H_
#define INFLUMAX_IM_BASELINES_H_

#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "graph/pagerank.h"
#include "graph/traversal.h"

namespace influmax {

/// The two structural seed-selection heuristics of Figure 6 (as in Kempe
/// et al. and Chen et al.): no propagation model, no data — pure graph
/// centrality.

/// Top-k nodes by out-degree (number of people they can influence).
inline std::vector<NodeId> HighDegreeSeeds(const Graph& g, NodeId k) {
  return TopOutDegreeNodes(g, k);
}

/// Top-k nodes by PageRank over reversed influence edges (see
/// PageRankConfig for why reversal is the right direction here).
inline std::vector<NodeId> PageRankSeeds(const Graph& g, NodeId k,
                                         double damping = 0.85) {
  PageRankConfig config;
  config.damping = damping;
  return TopPageRankNodes(g, config, k);
}

}  // namespace influmax

#endif  // INFLUMAX_IM_BASELINES_H_
