#ifndef INFLUMAX_IM_PMIA_H_
#define INFLUMAX_IM_PMIA_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/graph.h"
#include "propagation/edge_probabilities.h"

namespace influmax {

/// Maximum Influence Arborescence heuristic for the IC model after
/// Chen, Wang & Wang (KDD 2010) — the fast IC stand-in the paper uses for
/// its Flickr-sized experiments (Section 3 footnote 3 and Figure 5).
///
/// Influence is restricted to maximum-influence paths: MIIA(v, theta) is
/// the in-arborescence formed by the highest-probability path to v from
/// every node whose path probability is >= theta (computed with Dijkstra
/// on -log p). Activation probabilities ap(u) are exact on each tree
/// (one bottom-up pass), and the linearization coefficients alpha(v, u)
/// give each candidate's marginal influence, maintained incrementally as
/// seeds are added.
///
/// This is the MIA model of that paper; we do not implement the
/// "prefix-excluding" (PMIA) refinement — Chen et al. report the two
/// select nearly identical seed sets, and the role played here (a fast,
/// greedy-quality IC heuristic) only needs MIA. Documented in DESIGN.md.
struct PmiaConfig {
  /// Path-probability pruning threshold (Chen et al. use 1/320 for their
  /// main results).
  double theta = 1.0 / 320.0;
  /// Safety cap on arborescence size, 0 = unbounded. Guards against
  /// degenerate probability assignments (e.g. many p = 1 edges).
  NodeId max_arborescence_size = 2000;
};

class PmiaModel {
 public:
  /// Builds MIIA(v) for every node and the initial marginal-influence
  /// table. `g` and `p` may be destroyed afterwards (values are copied).
  static Result<PmiaModel> Build(const Graph& g, const EdgeProbabilities& p,
                                 const PmiaConfig& config);

  struct Selection {
    std::vector<NodeId> seeds;
    std::vector<double> marginal_gains;
    std::vector<double> cumulative_spread;  // MIA-model sigma of prefixes
  };

  /// Greedy selection of up to `k` seeds with incremental arborescence
  /// updates. One-shot (mutates ap/alpha state).
  Result<Selection> SelectSeeds(NodeId k);

  /// MIA-model spread of an arbitrary seed set: sum over roots v of
  /// ap(v | seeds, MIIA(v)). Does not disturb selection state.
  double EstimateSpread(const std::vector<NodeId>& seeds) const;

  /// Total nodes over all arborescences (memory/size diagnostic).
  std::uint64_t total_arborescence_nodes() const;

 private:
  struct Arborescence {
    std::vector<NodeId> nodes;        // settle order; nodes[0] = root
    std::vector<std::int32_t> parent;  // index into nodes, -1 for root
    std::vector<double> to_parent_prob;  // pp(node -> parent edge)
    // Children CSR (indexes into nodes).
    std::vector<std::uint32_t> child_offsets;
    std::vector<std::uint32_t> children;
    // Selection state.
    std::vector<double> ap;
    std::vector<double> alpha;
  };

  PmiaModel() = default;

  void ComputeAp(Arborescence& arbor, const std::vector<bool>& is_seed) const;
  void ComputeAlpha(Arborescence& arbor,
                    const std::vector<bool>& is_seed) const;

  NodeId num_nodes_ = 0;
  std::vector<Arborescence> arbors_;                 // arbors_[v] = MIIA(v)
  std::vector<std::vector<NodeId>> arbors_containing_;  // u -> roots
  std::vector<double> inc_inf_;
  std::vector<bool> is_seed_;
  double total_root_ap_ = 0.0;
  bool selection_done_ = false;
};

}  // namespace influmax

#endif  // INFLUMAX_IM_PMIA_H_
