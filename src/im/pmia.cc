#include "im/pmia.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace influmax {
namespace {

// Dijkstra on -log(p) from `root` along *in*-edges, pruned at
// -log(theta): settles exactly the nodes whose maximum-influence path to
// root has probability >= theta.
struct Settled {
  NodeId node;
  std::int32_t parent_index;  // index into the settle order
  double to_parent_prob;
};

std::vector<Settled> DijkstraMiia(const Graph& g, const EdgeProbabilities& p,
                                  NodeId root, double theta,
                                  NodeId max_size,
                                  std::vector<std::uint32_t>* stamp_scratch,
                                  std::uint32_t epoch) {
  const double max_dist = -std::log(theta);
  struct HeapItem {
    double dist;
    NodeId node;
    std::int32_t parent_index;
    double edge_prob;
    bool operator>(const HeapItem& o) const {
      if (dist != o.dist) return dist > o.dist;
      return node > o.node;  // deterministic tie-break
    }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
      heap;
  std::vector<Settled> order;
  auto& stamp = *stamp_scratch;

  heap.push({0.0, root, -1, 1.0});
  while (!heap.empty()) {
    const HeapItem item = heap.top();
    heap.pop();
    if (stamp[item.node] == epoch) continue;  // already settled
    stamp[item.node] = epoch;
    order.push_back({item.node, item.parent_index, item.edge_prob});
    if (max_size != 0 && order.size() >= max_size) break;
    const std::int32_t my_index = static_cast<std::int32_t>(order.size() - 1);
    // Extend paths backwards: predecessor u reaches root through
    // item.node with probability p(u -> item.node) * pp(item.node).
    const NodeId w = item.node;
    const EdgeIndex in_begin = g.InEdgeBegin(w);
    const auto in_neighbors = g.InNeighbors(w);
    for (std::size_t i = 0; i < in_neighbors.size(); ++i) {
      const NodeId u = in_neighbors[i];
      if (stamp[u] == epoch) continue;
      const double prob = p[g.InPosToOutEdge(in_begin + i)];
      if (prob <= 0.0) continue;
      const double cand = item.dist - std::log(prob);
      if (cand <= max_dist) {
        heap.push({cand, u, my_index, prob});
      }
    }
  }
  return order;
}

}  // namespace

Result<PmiaModel> PmiaModel::Build(const Graph& g, const EdgeProbabilities& p,
                                   const PmiaConfig& config) {
  if (config.theta <= 0.0 || config.theta > 1.0) {
    return Status::InvalidArgument("PMIA: theta must be in (0, 1]");
  }
  INFLUMAX_RETURN_IF_ERROR(ValidateIcProbabilities(g, p));

  PmiaModel model;
  const NodeId n = g.num_nodes();
  model.num_nodes_ = n;
  model.arbors_.resize(n);
  model.arbors_containing_.assign(n, {});
  model.inc_inf_.assign(n, 0.0);
  model.is_seed_.assign(n, false);

  std::vector<std::uint32_t> stamp(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto order =
        DijkstraMiia(g, p, v, config.theta, config.max_arborescence_size,
                     &stamp, v + 1);
    Arborescence& arbor = model.arbors_[v];
    const std::size_t size = order.size();
    arbor.nodes.resize(size);
    arbor.parent.resize(size);
    arbor.to_parent_prob.resize(size);
    for (std::size_t i = 0; i < size; ++i) {
      arbor.nodes[i] = order[i].node;
      arbor.parent[i] = order[i].parent_index;
      arbor.to_parent_prob[i] = order[i].to_parent_prob;
      model.arbors_containing_[order[i].node].push_back(v);
    }
    // Children CSR.
    arbor.child_offsets.assign(size + 1, 0);
    for (std::size_t i = 1; i < size; ++i) {
      arbor.child_offsets[arbor.parent[i] + 1]++;
    }
    for (std::size_t i = 0; i < size; ++i) {
      arbor.child_offsets[i + 1] += arbor.child_offsets[i];
    }
    arbor.children.resize(size == 0 ? 0 : size - 1);
    std::vector<std::uint32_t> cursor(arbor.child_offsets.begin(),
                                      arbor.child_offsets.end() - 1);
    for (std::size_t i = 1; i < size; ++i) {
      arbor.children[cursor[arbor.parent[i]]++] = static_cast<std::uint32_t>(i);
    }
    model.ComputeAp(arbor, model.is_seed_);
    model.ComputeAlpha(arbor, model.is_seed_);
    for (std::size_t i = 0; i < size; ++i) {
      model.inc_inf_[arbor.nodes[i]] += arbor.alpha[i] * (1.0 - arbor.ap[i]);
    }
    model.total_root_ap_ += size == 0 ? 0.0 : arbor.ap[0];
  }
  return model;
}

void PmiaModel::ComputeAp(Arborescence& arbor,
                          const std::vector<bool>& is_seed) const {
  const std::size_t size = arbor.nodes.size();
  arbor.ap.assign(size, 0.0);
  // Children settle after parents in Dijkstra order, so a reverse pass is
  // bottom-up.
  for (std::size_t i = size; i-- > 0;) {
    if (is_seed[arbor.nodes[i]]) {
      arbor.ap[i] = 1.0;
      continue;
    }
    double not_activated = 1.0;
    for (std::uint32_t c = arbor.child_offsets[i];
         c < arbor.child_offsets[i + 1]; ++c) {
      const std::uint32_t child = arbor.children[c];
      not_activated *= 1.0 - arbor.ap[child] * arbor.to_parent_prob[child];
    }
    arbor.ap[i] = 1.0 - not_activated;
  }
}

void PmiaModel::ComputeAlpha(Arborescence& arbor,
                             const std::vector<bool>& is_seed) const {
  const std::size_t size = arbor.nodes.size();
  arbor.alpha.assign(size, 0.0);
  if (size == 0) return;
  arbor.alpha[0] = 1.0;
  for (std::size_t i = 1; i < size; ++i) {
    const std::int32_t w = arbor.parent[i];
    // A seed parent is pinned at ap = 1: changing this subtree cannot
    // move the root's activation probability.
    if (is_seed[arbor.nodes[w]]) {
      arbor.alpha[i] = 0.0;
      continue;
    }
    double siblings = 1.0;
    for (std::uint32_t c = arbor.child_offsets[w];
         c < arbor.child_offsets[w + 1]; ++c) {
      const std::uint32_t sibling = arbor.children[c];
      if (sibling == i) continue;
      siblings *= 1.0 - arbor.ap[sibling] * arbor.to_parent_prob[sibling];
    }
    arbor.alpha[i] = arbor.alpha[w] * arbor.to_parent_prob[i] * siblings;
  }
}

Result<PmiaModel::Selection> PmiaModel::SelectSeeds(NodeId k) {
  if (selection_done_) {
    return Status::FailedPrecondition(
        "PMIA SelectSeeds already ran; Build() a fresh model");
  }
  selection_done_ = true;

  Selection selection;
  while (selection.seeds.size() < k) {
    NodeId best = kInvalidNode;
    double best_gain = 0.0;
    for (NodeId u = 0; u < num_nodes_; ++u) {
      if (is_seed_[u]) continue;
      if (best == kInvalidNode || inc_inf_[u] > best_gain) {
        best = u;
        best_gain = inc_inf_[u];
      }
    }
    if (best == kInvalidNode || best_gain <= 0.0) break;

    is_seed_[best] = true;
    // Refresh every arborescence containing the new seed.
    for (NodeId root : arbors_containing_[best]) {
      Arborescence& arbor = arbors_[root];
      for (std::size_t i = 0; i < arbor.nodes.size(); ++i) {
        inc_inf_[arbor.nodes[i]] -= arbor.alpha[i] * (1.0 - arbor.ap[i]);
      }
      total_root_ap_ -= arbor.ap[0];
      ComputeAp(arbor, is_seed_);
      ComputeAlpha(arbor, is_seed_);
      for (std::size_t i = 0; i < arbor.nodes.size(); ++i) {
        inc_inf_[arbor.nodes[i]] += arbor.alpha[i] * (1.0 - arbor.ap[i]);
      }
      total_root_ap_ += arbor.ap[0];
    }
    selection.seeds.push_back(best);
    selection.marginal_gains.push_back(best_gain);
    selection.cumulative_spread.push_back(total_root_ap_);
  }
  return selection;
}

double PmiaModel::EstimateSpread(const std::vector<NodeId>& seeds) const {
  std::vector<bool> seed_set(num_nodes_, false);
  for (NodeId s : seeds) seed_set[s] = true;
  double total = 0.0;
  Arborescence scratch;
  for (const Arborescence& arbor : arbors_) {
    if (arbor.nodes.empty()) continue;
    scratch.nodes = arbor.nodes;
    scratch.parent = arbor.parent;
    scratch.to_parent_prob = arbor.to_parent_prob;
    scratch.child_offsets = arbor.child_offsets;
    scratch.children = arbor.children;
    ComputeAp(scratch, seed_set);
    total += scratch.ap[0];
  }
  return total;
}

std::uint64_t PmiaModel::total_arborescence_nodes() const {
  std::uint64_t total = 0;
  for (const Arborescence& arbor : arbors_) total += arbor.nodes.size();
  return total;
}

}  // namespace influmax
