#ifndef INFLUMAX_IM_GREEDY_H_
#define INFLUMAX_IM_GREEDY_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "im/spread_oracle.h"

namespace influmax {

/// Generic greedy seed selection (Algorithm 1 of the paper) over any
/// SpreadOracle, with optional CELF lazy-forward evaluation (Leskovec et
/// al. KDD'07). With a monotone submodular oracle both variants return
/// identical seed sets and carry the (1 - 1/e) guarantee; CELF just skips
/// most marginal-gain evaluations.
/// Lazy-evaluation strategy for the greedy loop.
enum class GreedyVariant {
  /// Algorithm 1 verbatim: every candidate re-evaluated every round.
  kPlain,
  /// CELF (Leskovec et al. KDD'07): stale gains are upper bounds under
  /// submodularity, so only queue tops are re-evaluated.
  kCelf,
  /// CELF++ (Goyal, Lu & Lakshmanan WWW'11, the paper authors' own
  /// follow-up): each re-evaluation also computes the gain w.r.t.
  /// S + {current best}, so when that best is indeed picked next the
  /// candidate needs no further oracle call.
  kCelfPlusPlus,
};

struct GreedyConfig {
  GreedyVariant variant = GreedyVariant::kCelf;
  /// Optional candidate restriction (empty = all nodes). The Figure 7
  /// runtime experiment uses this to keep MC-greedy tractable.
  std::vector<NodeId> candidates;
};

struct GreedyResult {
  std::vector<NodeId> seeds;             // in pick order
  std::vector<double> marginal_gains;    // estimated gain of each pick
  std::vector<double> cumulative_spread;  // oracle spread of each prefix
  std::uint64_t oracle_calls = 0;        // spread evaluations performed
};

/// Runs greedy (plain or CELF) to pick up to `k` seeds.
GreedyResult SelectSeedsGreedy(SpreadOracle& oracle, NodeId k,
                               const GreedyConfig& config = {});

}  // namespace influmax

#endif  // INFLUMAX_IM_GREEDY_H_
