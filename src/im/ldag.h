#ifndef INFLUMAX_IM_LDAG_H_
#define INFLUMAX_IM_LDAG_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/graph.h"
#include "propagation/edge_probabilities.h"

namespace influmax {

/// Local-DAG heuristic for the LT model after Chen, Yuan & Zhang
/// (ICDM 2010) — the fast LT stand-in the paper uses on its Flickr-sized
/// dataset (Figure 5). Exploits the fact that LT activation
/// probabilities are computable in linear time on a DAG:
///   ap(u) = 1 (seed), else sum over DAG in-edges b(w, u) * ap(w).
///
/// LDAG(v, theta) gathers the nodes whose (greedily estimated) influence
/// on v is >= theta, adding nodes in decreasing influence order and
/// keeping only edges from a newly added node to nodes already inside,
/// which guarantees the local graph is a DAG. Marginal gains come from
/// the linearization coefficients alpha_v(u), refreshed incrementally per
/// affected DAG as seeds are added.
struct LdagConfig {
  /// Influence pruning threshold (Chen et al. suggest 1/320).
  double theta = 1.0 / 320.0;
  /// Safety cap on one local DAG's node count, 0 = unbounded.
  NodeId max_dag_size = 2000;
};

class LdagModel {
 public:
  /// Builds LDAG(v) for every node v under LT weights `w` (validated).
  static Result<LdagModel> Build(const Graph& g, const EdgeProbabilities& w,
                                 const LdagConfig& config);

  struct Selection {
    std::vector<NodeId> seeds;
    std::vector<double> marginal_gains;
    std::vector<double> cumulative_spread;  // LDAG-model sigma of prefixes
  };

  /// Greedy selection of up to `k` seeds. One-shot (mutates state).
  Result<Selection> SelectSeeds(NodeId k);

  /// LDAG-model spread of an arbitrary seed set: sum over roots v of
  /// ap(v | seeds, LDAG(v)). Does not disturb selection state.
  double EstimateSpread(const std::vector<NodeId>& seeds) const;

  /// Total nodes over all local DAGs (size diagnostic).
  std::uint64_t total_dag_nodes() const;

 private:
  struct LocalDag {
    std::vector<NodeId> nodes;  // addition order; nodes[0] = root v
    // Out-edges within the DAG: node index i -> earlier node index j,
    // weighted by b(nodes[i], nodes[j]).
    std::vector<std::uint32_t> out_offsets;  // size nodes+1
    std::vector<std::uint32_t> out_to;
    std::vector<double> out_weight;
    // Selection state.
    std::vector<double> ap;
    std::vector<double> alpha;
  };

  LdagModel() = default;

  void ComputeAp(LocalDag& dag, const std::vector<bool>& is_seed) const;
  void ComputeAlpha(LocalDag& dag, const std::vector<bool>& is_seed) const;

  NodeId num_nodes_ = 0;
  std::vector<LocalDag> dags_;                    // dags_[v] = LDAG(v)
  std::vector<std::vector<NodeId>> dags_containing_;  // u -> roots
  std::vector<double> inc_inf_;
  std::vector<bool> is_seed_;
  double total_root_ap_ = 0.0;
  bool selection_done_ = false;
};

}  // namespace influmax

#endif  // INFLUMAX_IM_LDAG_H_
