#include "im/ldag.h"

#include <algorithm>
#include <queue>

#include "common/flat_hash.h"

namespace influmax {
namespace {

// Greedy LDAG(v, theta) construction (Algorithm 3 of Chen et al. 2010):
// repeatedly admit the outside node with the largest estimated influence
// on v, Inf(u) = sum over admitted out-neighbors w of b(u, w) * Inf(w),
// while Inf >= theta. Inf values only grow as nodes are admitted, so a
// lazy max-heap works.
struct Admitted {
  NodeId node;
  double influence;
};

std::vector<Admitted> BuildLocalDagOrder(
    const Graph& g, const EdgeProbabilities& w, NodeId root, double theta,
    NodeId max_size, std::vector<double>* influence,
    std::vector<std::uint32_t>* stamp, std::vector<bool>* admitted_flag,
    std::uint32_t epoch) {
  struct HeapItem {
    double influence;
    NodeId node;
    bool operator<(const HeapItem& o) const {
      if (influence != o.influence) return influence < o.influence;
      return node > o.node;  // deterministic tie-break: smaller id first
    }
  };
  std::priority_queue<HeapItem> heap;
  std::vector<Admitted> order;

  auto touch = [&](NodeId u) {
    if ((*stamp)[u] != epoch) {
      (*stamp)[u] = epoch;
      (*influence)[u] = 0.0;
      (*admitted_flag)[u] = false;
    }
  };

  touch(root);
  (*influence)[root] = 1.0;
  heap.push({1.0, root});
  while (!heap.empty()) {
    const HeapItem item = heap.top();
    heap.pop();
    const NodeId u = item.node;
    touch(u);
    if ((*admitted_flag)[u]) continue;               // already inside
    if (item.influence < (*influence)[u]) continue;  // stale entry
    if (item.influence < theta) break;
    (*admitted_flag)[u] = true;
    order.push_back({u, item.influence});
    if (max_size != 0 && order.size() >= max_size) break;
    // Admitting u raises the influence of its in-neighbors by
    // b(x, u) * Inf(u).
    const EdgeIndex in_begin = g.InEdgeBegin(u);
    const auto in_neighbors = g.InNeighbors(u);
    for (std::size_t i = 0; i < in_neighbors.size(); ++i) {
      const NodeId x = in_neighbors[i];
      touch(x);
      if ((*admitted_flag)[x]) continue;
      const double weight = w[g.InPosToOutEdge(in_begin + i)];
      if (weight <= 0.0) continue;
      (*influence)[x] += weight * item.influence;
      heap.push({(*influence)[x], x});
    }
  }
  return order;
}

}  // namespace

Result<LdagModel> LdagModel::Build(const Graph& g, const EdgeProbabilities& w,
                                   const LdagConfig& config) {
  if (config.theta <= 0.0 || config.theta > 1.0) {
    return Status::InvalidArgument("LDAG: theta must be in (0, 1]");
  }
  INFLUMAX_RETURN_IF_ERROR(ValidateLtWeights(g, w));

  LdagModel model;
  const NodeId n = g.num_nodes();
  model.num_nodes_ = n;
  model.dags_.resize(n);
  model.dags_containing_.assign(n, {});
  model.inc_inf_.assign(n, 0.0);
  model.is_seed_.assign(n, false);

  std::vector<double> influence(n, 0.0);
  std::vector<std::uint32_t> stamp(n, 0);
  std::vector<bool> admitted(n, false);
  FlatHashMap<NodeId, std::uint32_t> index_of;

  for (NodeId v = 0; v < n; ++v) {
    const auto order =
        BuildLocalDagOrder(g, w, v, config.theta, config.max_dag_size,
                           &influence, &stamp, &admitted, v + 1);
    LocalDag& dag = model.dags_[v];
    const std::size_t size = order.size();
    dag.nodes.resize(size);
    index_of.Clear();
    for (std::size_t i = 0; i < size; ++i) {
      dag.nodes[i] = order[i].node;
      index_of.InsertOrAssign(order[i].node, static_cast<std::uint32_t>(i));
      model.dags_containing_[order[i].node].push_back(v);
    }
    // Edges from each node to *earlier-admitted* nodes only: guarantees
    // acyclicity regardless of cycles in the social graph.
    dag.out_offsets.assign(size + 1, 0);
    for (std::size_t i = 0; i < size; ++i) {
      const NodeId u = dag.nodes[i];
      const EdgeIndex base = g.OutEdgeBegin(u);
      const auto out = g.OutNeighbors(u);
      for (std::size_t e = 0; e < out.size(); ++e) {
        const std::uint32_t* pos = index_of.Find(out[e]);
        if (pos != nullptr && *pos < i && w[base + e] > 0.0) {
          dag.out_to.push_back(*pos);
          dag.out_weight.push_back(w[base + e]);
          dag.out_offsets[i + 1]++;
        }
      }
    }
    for (std::size_t i = 0; i < size; ++i) {
      dag.out_offsets[i + 1] += dag.out_offsets[i];
    }
    model.ComputeAp(dag, model.is_seed_);
    model.ComputeAlpha(dag, model.is_seed_);
    for (std::size_t i = 0; i < size; ++i) {
      model.inc_inf_[dag.nodes[i]] += dag.alpha[i] * (1.0 - dag.ap[i]);
    }
    model.total_root_ap_ += size == 0 ? 0.0 : dag.ap[0];
  }
  return model;
}

void LdagModel::ComputeAp(LocalDag& dag,
                          const std::vector<bool>& is_seed) const {
  const std::size_t size = dag.nodes.size();
  dag.ap.assign(size, 0.0);
  // Reverse admission order is topological for influence flow: node i's
  // activation mass is final when reached, then pushed along its
  // out-edges to earlier nodes.
  for (std::size_t i = size; i-- > 0;) {
    if (is_seed[dag.nodes[i]]) dag.ap[i] = 1.0;
    const double ap_i = dag.ap[i];
    if (ap_i == 0.0) continue;
    for (std::uint32_t e = dag.out_offsets[i]; e < dag.out_offsets[i + 1];
         ++e) {
      if (!is_seed[dag.nodes[dag.out_to[e]]]) {
        dag.ap[dag.out_to[e]] += dag.out_weight[e] * ap_i;
      }
    }
  }
}

void LdagModel::ComputeAlpha(LocalDag& dag,
                             const std::vector<bool>& is_seed) const {
  const std::size_t size = dag.nodes.size();
  dag.alpha.assign(size, 0.0);
  if (size == 0) return;
  dag.alpha[0] = 1.0;
  // Admission order: node i's alpha depends on earlier (downstream)
  // nodes' alphas.
  for (std::size_t i = 1; i < size; ++i) {
    double total = 0.0;
    for (std::uint32_t e = dag.out_offsets[i]; e < dag.out_offsets[i + 1];
         ++e) {
      const std::uint32_t j = dag.out_to[e];
      if (!is_seed[dag.nodes[j]]) {
        total += dag.out_weight[e] * dag.alpha[j];
      }
    }
    dag.alpha[i] = total;
  }
}

Result<LdagModel::Selection> LdagModel::SelectSeeds(NodeId k) {
  if (selection_done_) {
    return Status::FailedPrecondition(
        "LDAG SelectSeeds already ran; Build() a fresh model");
  }
  selection_done_ = true;

  Selection selection;
  while (selection.seeds.size() < k) {
    NodeId best = kInvalidNode;
    double best_gain = 0.0;
    for (NodeId u = 0; u < num_nodes_; ++u) {
      if (is_seed_[u]) continue;
      if (best == kInvalidNode || inc_inf_[u] > best_gain) {
        best = u;
        best_gain = inc_inf_[u];
      }
    }
    if (best == kInvalidNode || best_gain <= 0.0) break;

    is_seed_[best] = true;
    for (NodeId root : dags_containing_[best]) {
      LocalDag& dag = dags_[root];
      for (std::size_t i = 0; i < dag.nodes.size(); ++i) {
        inc_inf_[dag.nodes[i]] -= dag.alpha[i] * (1.0 - dag.ap[i]);
      }
      total_root_ap_ -= dag.ap[0];
      ComputeAp(dag, is_seed_);
      ComputeAlpha(dag, is_seed_);
      for (std::size_t i = 0; i < dag.nodes.size(); ++i) {
        inc_inf_[dag.nodes[i]] += dag.alpha[i] * (1.0 - dag.ap[i]);
      }
      total_root_ap_ += dag.ap[0];
    }
    selection.seeds.push_back(best);
    selection.marginal_gains.push_back(best_gain);
    selection.cumulative_spread.push_back(total_root_ap_);
  }
  return selection;
}

double LdagModel::EstimateSpread(const std::vector<NodeId>& seeds) const {
  std::vector<bool> seed_set(num_nodes_, false);
  for (NodeId s : seeds) seed_set[s] = true;
  double total = 0.0;
  LocalDag scratch;
  for (const LocalDag& dag : dags_) {
    if (dag.nodes.empty()) continue;
    scratch.nodes = dag.nodes;
    scratch.out_offsets = dag.out_offsets;
    scratch.out_to = dag.out_to;
    scratch.out_weight = dag.out_weight;
    ComputeAp(scratch, seed_set);
    total += scratch.ap[0];
  }
  return total;
}

std::uint64_t LdagModel::total_dag_nodes() const {
  std::uint64_t total = 0;
  for (const LocalDag& dag : dags_) total += dag.nodes.size();
  return total;
}

}  // namespace influmax
