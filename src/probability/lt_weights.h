#ifndef INFLUMAX_PROBABILITY_LT_WEIGHTS_H_
#define INFLUMAX_PROBABILITY_LT_WEIGHTS_H_

#include "actionlog/action_log.h"
#include "common/status.h"
#include "graph/graph.h"
#include "probability/time_params.h"
#include "propagation/edge_probabilities.h"

namespace influmax {

/// LT weight learning as used in Section 6 of the paper ("we take ideas
/// from [10] and [7]"): the weight of edge (v, u) is
///   b_{v,u} = A_{v2u} / N_u,
/// where A_{v2u} is the number of actions that propagated from v to u in
/// the training log and N_u normalizes the incoming weights of u to sum
/// to 1 (nodes whose neighbors never influenced them get all-zero
/// incoming weights).
EdgeProbabilities LearnLtWeights(const Graph& g,
                                 const InfluenceTimeParams& params);

/// Convenience overload that learns the propagation counts itself.
Result<EdgeProbabilities> LearnLtWeights(const Graph& g,
                                         const ActionLog& log);

}  // namespace influmax

#endif  // INFLUMAX_PROBABILITY_LT_WEIGHTS_H_
