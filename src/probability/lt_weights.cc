#include "probability/lt_weights.h"

namespace influmax {

EdgeProbabilities LearnLtWeights(const Graph& g,
                                 const InfluenceTimeParams& params) {
  EdgeProbabilities weights(g.num_edges(), 0.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const EdgeIndex in_begin = g.InEdgeBegin(u);
    const std::uint32_t din = g.InDegree(u);
    std::uint64_t normalizer = 0;
    for (std::uint32_t i = 0; i < din; ++i) {
      normalizer +=
          params.edge_propagation_count[g.InPosToOutEdge(in_begin + i)];
    }
    if (normalizer == 0) continue;
    for (std::uint32_t i = 0; i < din; ++i) {
      const EdgeIndex e = g.InPosToOutEdge(in_begin + i);
      weights[e] = static_cast<double>(params.edge_propagation_count[e]) /
                   static_cast<double>(normalizer);
    }
  }
  return weights;
}

Result<EdgeProbabilities> LearnLtWeights(const Graph& g,
                                         const ActionLog& log) {
  Result<InfluenceTimeParams> params = LearnTimeParams(g, log);
  if (!params.ok()) return params.status();
  return LearnLtWeights(g, *params);
}

}  // namespace influmax
