#ifndef INFLUMAX_PROBABILITY_EM_LEARNER_H_
#define INFLUMAX_PROBABILITY_EM_LEARNER_H_

#include <cstdint>

#include "actionlog/action_log.h"
#include "common/status.h"
#include "graph/graph.h"
#include "propagation/edge_probabilities.h"

namespace influmax {

/// Expectation-Maximization learner for IC edge probabilities from an
/// action log, after Saito et al. (KES 2008), with the adaptation the
/// paper applies in Section 3: real traces are continuous-time, so *all*
/// previously activated neighbors of u are treated as its possible
/// influencers (the original formulation admits only neighbors activated
/// in the immediately preceding discrete step).
///
/// For an activation of u in action a with potential-influencer set
/// N_in(u, a), the chance at least one influencer succeeded is
///   P_u^a = 1 - prod_{v in N_in(u,a)} (1 - p_{v,u}).
/// E-step: responsibility of v for the activation is p_{v,u} / P_u^a.
/// M-step: p_{v,u} <- (sum of responsibilities over positive actions)
///                     / (#positives + #negatives),
/// where a *positive* for (v, u) is an action both performed with
/// t(v) < t(u), and a *negative* is an action v performed that u never
/// performed (v attempted and failed). Actions u performed first — or at
/// the same instant — are neither: v never got to attempt.
struct EmConfig {
  int max_iterations = 50;
  /// Convergence when the max absolute parameter change drops below this.
  double tolerance = 1e-6;
  /// Starting value for every edge with at least one positive occurrence.
  double initial_probability = 0.1;
  /// When true, restrict potential influencers to neighbors activated
  /// within `discrete_window` time units before u — the closest
  /// continuous-time analogue of Saito's strict "previous time step"
  /// formulation (kept for comparison experiments).
  bool strict_discrete_time = false;
  double discrete_window = 1.0;
};

struct EmResult {
  EdgeProbabilities probabilities;
  int iterations = 0;
  bool converged = false;
  /// Edges with at least one positive occurrence (only these can get a
  /// non-zero probability).
  std::uint64_t edges_with_evidence = 0;
  /// Final log-likelihood of the activations given the parameters.
  double log_likelihood = 0.0;
};

/// Learns IC probabilities for every edge of `g` from the training `log`.
/// Edges without positive evidence get probability 0.
Result<EmResult> LearnIcProbabilitiesEm(const Graph& g, const ActionLog& log,
                                        const EmConfig& config);

}  // namespace influmax

#endif  // INFLUMAX_PROBABILITY_EM_LEARNER_H_
