#ifndef INFLUMAX_PROBABILITY_TIME_PARAMS_H_
#define INFLUMAX_PROBABILITY_TIME_PARAMS_H_

#include <cstdint>
#include <vector>

#include "actionlog/action_log.h"
#include "common/status.h"
#include "graph/graph.h"

namespace influmax {

/// Temporal influence parameters learned from an action log (Goyal et al.
/// WSDM 2010; used by Eq. 9 of the paper for the CD model's direct
/// credit, and A_{v2u} doubles as the LT weight numerator):
///
///  * tau_{v,u}  — average time taken for actions to propagate from v to
///                 u, over actions where the propagation v -> u happened;
///  * A_{v2u}    — number of actions that propagated from v to u;
///  * infl(u)    — influenceability: fraction of u's actions performed
///                 "under influence", i.e. with at least one potential
///                 influencer v such that t(u,a) - t(v,a) <= tau_{v,u}.
struct InfluenceTimeParams {
  /// Per out-edge average propagation delay; kNeverPerformed (infinity)
  /// for edges that never propagated anything.
  std::vector<double> edge_mean_delay;
  /// Per out-edge propagation count A_{v2u}.
  std::vector<std::uint32_t> edge_propagation_count;
  /// Per node influenceability infl(u) in [0, 1].
  std::vector<double> influenceability;
  /// Mean delay over all observed propagations (fallback for edges seen
  /// only at scan time, e.g. when scanning a log the parameters were not
  /// trained on).
  double global_mean_delay = 1.0;
  /// Total number of (edge, action) propagation events observed.
  std::uint64_t total_propagation_events = 0;
};

/// Learns all parameters in two passes over `log` (one to average delays,
/// one to evaluate the influenceability indicator against the learned
/// tau values).
Result<InfluenceTimeParams> LearnTimeParams(const Graph& g,
                                            const ActionLog& log);

}  // namespace influmax

#endif  // INFLUMAX_PROBABILITY_TIME_PARAMS_H_
