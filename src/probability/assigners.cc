#include "probability/assigners.h"

#include <algorithm>

#include "common/rng.h"

namespace influmax {

EdgeProbabilities AssignUniform(const Graph& g, double p) {
  return EdgeProbabilities(g.num_edges(), p);
}

EdgeProbabilities AssignTrivalency(const Graph& g, std::uint64_t seed) {
  static constexpr double kLevels[3] = {0.1, 0.01, 0.001};
  EdgeProbabilities probs(g.num_edges());
  Rng rng(seed);
  for (EdgeIndex e = 0; e < g.num_edges(); ++e) {
    probs[e] = kLevels[rng.NextBounded(3)];
  }
  return probs;
}

EdgeProbabilities AssignWeightedCascade(const Graph& g) {
  EdgeProbabilities probs(g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const EdgeIndex base = g.OutEdgeBegin(v);
    const auto neighbors = g.OutNeighbors(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      probs[base + i] = 1.0 / g.InDegree(neighbors[i]);
    }
  }
  return probs;
}

EdgeProbabilities PerturbProbabilities(const EdgeProbabilities& p,
                                       double noise_fraction,
                                       std::uint64_t seed) {
  EdgeProbabilities out(p.size());
  Rng rng(seed);
  for (EdgeIndex e = 0; e < p.size(); ++e) {
    const double factor =
        1.0 + rng.NextUniform(-noise_fraction, noise_fraction);
    out[e] = std::clamp(p[e] * factor, 0.0, 1.0);
  }
  return out;
}

}  // namespace influmax
