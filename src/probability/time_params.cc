#include "probability/time_params.h"

#include <algorithm>

#include "actionlog/propagation_dag.h"
#include "common/types.h"

namespace influmax {

Result<InfluenceTimeParams> LearnTimeParams(const Graph& g,
                                            const ActionLog& log) {
  if (log.num_users() != g.num_nodes()) {
    return Status::InvalidArgument(
        "time params: action log user space does not match graph");
  }

  InfluenceTimeParams params;
  const EdgeIndex m = g.num_edges();
  std::vector<double> delay_sum(m, 0.0);
  params.edge_propagation_count.assign(m, 0);
  params.influenceability.assign(g.num_nodes(), 0.0);

  // Pass 1: accumulate per-edge propagation delays.
  double global_sum = 0.0;
  for (ActionId a = 0; a < log.num_actions(); ++a) {
    const PropagationDag dag = BuildPropagationDag(g, log.ActionTrace(a));
    for (NodeId pos = 0; pos < dag.size(); ++pos) {
      const auto parents = dag.Parents(pos);
      const auto edges = dag.ParentEdges(pos);
      for (std::size_t i = 0; i < parents.size(); ++i) {
        const double delta = dag.TimeAt(pos) - dag.TimeAt(parents[i]);
        delay_sum[edges[i]] += delta;
        params.edge_propagation_count[edges[i]]++;
        global_sum += delta;
        ++params.total_propagation_events;
      }
    }
  }
  params.edge_mean_delay.assign(m, kNeverPerformed);
  for (EdgeIndex e = 0; e < m; ++e) {
    if (params.edge_propagation_count[e] > 0) {
      params.edge_mean_delay[e] =
          delay_sum[e] / params.edge_propagation_count[e];
    }
  }
  if (params.total_propagation_events > 0) {
    params.global_mean_delay =
        global_sum / static_cast<double>(params.total_propagation_events);
  }

  // Pass 2: influenceability — count actions performed "under influence"
  // of at least one potential influencer within its learned tau.
  std::vector<std::uint32_t> influenced_actions(g.num_nodes(), 0);
  for (ActionId a = 0; a < log.num_actions(); ++a) {
    const PropagationDag dag = BuildPropagationDag(g, log.ActionTrace(a));
    for (NodeId pos = 0; pos < dag.size(); ++pos) {
      const auto parents = dag.Parents(pos);
      const auto edges = dag.ParentEdges(pos);
      for (std::size_t i = 0; i < parents.size(); ++i) {
        const double delta = dag.TimeAt(pos) - dag.TimeAt(parents[i]);
        if (delta <= params.edge_mean_delay[edges[i]]) {
          influenced_actions[dag.UserAt(pos)]++;
          break;
        }
      }
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const std::uint32_t au = log.ActionsPerformedBy(u);
    params.influenceability[u] =
        au == 0 ? 0.0 : static_cast<double>(influenced_actions[u]) / au;
  }
  return params;
}

}  // namespace influmax
