#include "probability/em_learner.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "actionlog/propagation_dag.h"
#include "common/flat_hash.h"

namespace influmax {
namespace {

// Flattened positive evidence: one "group" per activation-with-parents,
// holding the out-edge ids of the potential influencer edges.
struct Evidence {
  std::vector<EdgeIndex> group_edges;
  std::vector<std::uint64_t> group_offsets;  // size = #groups + 1
  std::vector<std::uint32_t> positives;      // per edge
  std::vector<std::uint32_t> trials;         // per edge: positives + negatives
};

Evidence CollectEvidence(const Graph& g, const ActionLog& log,
                         const EmConfig& config) {
  Evidence ev;
  const EdgeIndex m = g.num_edges();
  ev.positives.assign(m, 0);
  ev.trials.assign(m, 0);
  ev.group_offsets.push_back(0);

  // both[e]: number of actions in which both endpoints of e participated
  // (any order, including ties). negatives = A_v - both.
  std::vector<std::uint32_t> both(m, 0);
  FlatHashSet<NodeId> participants;

  for (ActionId a = 0; a < log.num_actions(); ++a) {
    const auto trace = log.ActionTrace(a);
    const PropagationDag dag = BuildPropagationDag(g, trace);

    // Positive groups from the DAG.
    for (NodeId pos = 0; pos < dag.size(); ++pos) {
      const auto parents = dag.Parents(pos);
      const auto edges = dag.ParentEdges(pos);
      const std::size_t before = ev.group_edges.size();
      for (std::size_t i = 0; i < parents.size(); ++i) {
        if (config.strict_discrete_time &&
            dag.TimeAt(pos) - dag.TimeAt(parents[i]) >
                config.discrete_window) {
          continue;
        }
        ev.group_edges.push_back(edges[i]);
        ev.positives[edges[i]]++;
      }
      if (ev.group_edges.size() > before) {
        ev.group_offsets.push_back(ev.group_edges.size());
      }
    }

    // Joint-participation counts for the negative side.
    participants.Clear();
    for (const ActionTuple& t : trace) participants.Insert(t.user);
    for (const ActionTuple& t : trace) {
      const EdgeIndex base = g.OutEdgeBegin(t.user);
      const auto neighbors = g.OutNeighbors(t.user);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (participants.Contains(neighbors[i])) both[base + i]++;
      }
    }
  }

  // trials = positives + negatives; negatives = A_v - both.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::uint32_t av = log.ActionsPerformedBy(v);
    const EdgeIndex base = g.OutEdgeBegin(v);
    const std::uint32_t deg = g.OutDegree(v);
    for (std::uint32_t i = 0; i < deg; ++i) {
      const EdgeIndex e = base + i;
      ev.trials[e] = ev.positives[e] + (av - both[e]);
    }
  }
  return ev;
}

}  // namespace

Result<EmResult> LearnIcProbabilitiesEm(const Graph& g, const ActionLog& log,
                                        const EmConfig& config) {
  if (config.max_iterations < 1) {
    return Status::InvalidArgument("EmConfig: max_iterations must be >= 1");
  }
  if (config.initial_probability <= 0.0 || config.initial_probability > 1.0) {
    return Status::InvalidArgument(
        "EmConfig: initial_probability must be in (0, 1]");
  }
  if (log.num_users() != g.num_nodes()) {
    return Status::InvalidArgument(
        "EM: action log user space does not match graph");
  }

  const Evidence ev = CollectEvidence(g, log, config);
  const EdgeIndex m = g.num_edges();

  EmResult result;
  result.probabilities = EdgeProbabilities(m, 0.0);
  for (EdgeIndex e = 0; e < m; ++e) {
    if (ev.positives[e] > 0) {
      result.probabilities[e] = config.initial_probability;
      ++result.edges_with_evidence;
    }
  }

  const std::size_t num_groups = ev.group_offsets.size() - 1;
  std::vector<double> responsibility(m, 0.0);
  constexpr double kMinActivationProb = 1e-12;

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    std::fill(responsibility.begin(), responsibility.end(), 0.0);
    // E-step.
    for (std::size_t gidx = 0; gidx < num_groups; ++gidx) {
      const std::uint64_t begin = ev.group_offsets[gidx];
      const std::uint64_t end = ev.group_offsets[gidx + 1];
      double not_activated = 1.0;
      for (std::uint64_t i = begin; i < end; ++i) {
        not_activated *= 1.0 - result.probabilities[ev.group_edges[i]];
      }
      const double p_activated =
          std::max(1.0 - not_activated, kMinActivationProb);
      for (std::uint64_t i = begin; i < end; ++i) {
        const EdgeIndex e = ev.group_edges[i];
        responsibility[e] += result.probabilities[e] / p_activated;
      }
    }
    // M-step.
    double max_delta = 0.0;
    for (EdgeIndex e = 0; e < m; ++e) {
      if (ev.positives[e] == 0) continue;
      const double updated =
          std::min(1.0, responsibility[e] / ev.trials[e]);
      max_delta = std::max(max_delta,
                           std::abs(updated - result.probabilities[e]));
      result.probabilities[e] = updated;
    }
    result.iterations = iter + 1;
    if (max_delta < config.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Final log-likelihood: activations contribute log P_u^a; failed
  // attempts contribute negatives * log(1 - p).
  double ll = 0.0;
  for (std::size_t gidx = 0; gidx < num_groups; ++gidx) {
    double not_activated = 1.0;
    for (std::uint64_t i = ev.group_offsets[gidx];
         i < ev.group_offsets[gidx + 1]; ++i) {
      not_activated *= 1.0 - result.probabilities[ev.group_edges[i]];
    }
    ll += std::log(std::max(1.0 - not_activated, kMinActivationProb));
  }
  for (EdgeIndex e = 0; e < m; ++e) {
    const std::uint32_t negatives = ev.trials[e] - ev.positives[e];
    if (negatives > 0 && result.probabilities[e] > 0.0) {
      ll += negatives *
            std::log(std::max(1.0 - result.probabilities[e], 1e-300));
    }
  }
  result.log_likelihood = ll;
  return result;
}

}  // namespace influmax
