#ifndef INFLUMAX_PROBABILITY_ASSIGNERS_H_
#define INFLUMAX_PROBABILITY_ASSIGNERS_H_

#include <cstdint>

#include "graph/graph.h"
#include "propagation/edge_probabilities.h"

namespace influmax {

/// The ad-hoc edge-probability assignment methods compared in Section 3
/// of the paper. None of them look at the action log — that is the point
/// the paper makes against them.

/// UN: every edge gets probability `p` (paper uses 0.01).
EdgeProbabilities AssignUniform(const Graph& g, double p = 0.01);

/// TV ("trivalency"): each edge gets a value drawn uniformly at random
/// from {0.1, 0.01, 0.001}.
EdgeProbabilities AssignTrivalency(const Graph& g, std::uint64_t seed);

/// WC ("weighted cascade"): edge (v, u) gets 1 / in-degree(u).
EdgeProbabilities AssignWeightedCascade(const Graph& g);

/// PT: multiplicative noise on learned probabilities — each edge is
/// perturbed by a percentage drawn uniformly from
/// [-noise_fraction, +noise_fraction] and clamped to [0, 1]. The paper
/// uses noise_fraction = 0.2 to probe the robustness of EM-learned
/// probabilities.
EdgeProbabilities PerturbProbabilities(const EdgeProbabilities& p,
                                       double noise_fraction,
                                       std::uint64_t seed);

}  // namespace influmax

#endif  // INFLUMAX_PROBABILITY_ASSIGNERS_H_
