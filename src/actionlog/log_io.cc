#include "actionlog/log_io.h"

#include <algorithm>
#include <sstream>

#include "common/binary_io.h"
#include "common/text_io.h"

namespace influmax {

Result<ActionLog> ReadActionLogFile(const std::string& path) {
  LineReader reader(path);
  if (!reader.status().ok()) return reader.status();

  struct Row {
    NodeId user;
    std::uint32_t action;
    Timestamp time;
  };
  std::vector<Row> rows;
  NodeId declared_users = 0;
  bool has_header = false;
  NodeId max_user = 0;

  std::string line;
  bool first = true;
  while (reader.Next(&line)) {
    const auto fields = SplitFields(line, '\t');
    if (first && fields.size() == 2 && fields[0] == "users") {
      Result<std::uint32_t> n = ParseU32(fields[1]);
      if (!n.ok()) return n.status();
      declared_users = *n;
      has_header = true;
      first = false;
      continue;
    }
    first = false;
    if (fields.size() != 3) {
      return Status::Corruption(path + ":" +
                                std::to_string(reader.line_number()) +
                                ": expected 'user<TAB>action<TAB>time'");
    }
    Result<std::uint32_t> user = ParseU32(fields[0]);
    if (!user.ok()) return user.status();
    Result<std::uint32_t> action = ParseU32(fields[1]);
    if (!action.ok()) return action.status();
    Result<double> time = ParseDouble(fields[2]);
    if (!time.ok()) return time.status();
    rows.push_back({*user, *action, *time});
    max_user = std::max(max_user, *user);
  }

  const NodeId num_users =
      has_header ? declared_users : (rows.empty() ? 0 : max_user + 1);
  ActionLogBuilder builder(num_users);
  for (const Row& r : rows) builder.Add(r.user, r.action, r.time);
  return builder.Build();
}

Status WriteActionLogFile(const ActionLog& log, const std::string& path) {
  std::ostringstream out;
  out << "# influmax action log: user<TAB>action<TAB>time per line\n";
  out << "users\t" << log.num_users() << "\n";
  out.precision(17);  // doubles round-trip exactly
  for (ActionId a = 0; a < log.num_actions(); ++a) {
    for (const ActionTuple& t : log.ActionTrace(a)) {
      out << t.user << "\t" << log.OriginalActionId(a) << "\t" << t.time
          << "\n";
    }
  }
  return WriteTextFile(path, out.str());
}

namespace {
constexpr std::uint64_t kLogMagic = 0x584D464C474F4C41ULL;  // "ALOGLFMX"
constexpr std::uint32_t kLogVersion = 1;
}  // namespace

Status WriteActionLogBinary(const ActionLog& log, const std::string& path) {
  BinaryWriter writer(path, kLogMagic, kLogVersion);
  INFLUMAX_RETURN_IF_ERROR(writer.status());
  writer.WriteU32(log.num_users());
  std::vector<NodeId> users;
  std::vector<std::uint32_t> actions;  // original ids, like the text format
  std::vector<double> times;
  users.reserve(log.num_tuples());
  actions.reserve(log.num_tuples());
  times.reserve(log.num_tuples());
  for (ActionId a = 0; a < log.num_actions(); ++a) {
    for (const ActionTuple& t : log.ActionTrace(a)) {
      users.push_back(t.user);
      actions.push_back(log.OriginalActionId(a));
      times.push_back(t.time);
    }
  }
  writer.WriteVector(users);
  writer.WriteVector(actions);
  writer.WriteVector(times);
  return writer.Finish();
}

Result<ActionLog> ReadActionLogBinary(const std::string& path) {
  BinaryReader reader(path, kLogMagic, kLogVersion);
  INFLUMAX_RETURN_IF_ERROR(reader.status());
  const NodeId num_users = reader.ReadU32();
  constexpr std::uint64_t kMaxTuples = 1ULL << 34;  // sanity bound
  const auto users = reader.ReadVector<NodeId>(kMaxTuples);
  const auto actions = reader.ReadVector<std::uint32_t>(kMaxTuples);
  const auto times = reader.ReadVector<double>(kMaxTuples);
  INFLUMAX_RETURN_IF_ERROR(reader.Finish());
  if (users.size() != actions.size() || users.size() != times.size()) {
    return Status::Corruption("tuple array size mismatch in '" + path + "'");
  }
  ActionLogBuilder builder(num_users);
  for (std::size_t i = 0; i < users.size(); ++i) {
    builder.Add(users[i], actions[i], times[i]);
  }
  return builder.Build();
}

}  // namespace influmax
