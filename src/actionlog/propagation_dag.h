#ifndef INFLUMAX_ACTIONLOG_PROPAGATION_DAG_H_
#define INFLUMAX_ACTIONLOG_PROPAGATION_DAG_H_

#include <span>
#include <vector>

#include "actionlog/action_log.h"
#include "common/types.h"
#include "graph/graph.h"

namespace influmax {

/// The propagation graph G(a) of one action (Section 4, "Data Model"):
/// nodes are the users who performed the action; there is an edge
/// (v -> u) iff (v, u) is a social edge and t(v, a) < t(u, a) strictly.
/// G(a) is always a DAG (the time constraint forbids cycles); positions
/// 0..size-1 below are a topological order (chronological order of the
/// trace, ties broken by user id).
///
/// Only *parent* (incoming) adjacency is materialized: every consumer in
/// the paper — credit DP (Eq. 5), EM responsibilities, initiator tests —
/// walks parents in topological order.
class PropagationDag {
 public:
  /// Number of participants |V(a)|.
  NodeId size() const { return static_cast<NodeId>(users_.size()); }

  /// User at topological position `pos`.
  NodeId UserAt(NodeId pos) const { return users_[pos]; }

  /// Activation time at position `pos`.
  Timestamp TimeAt(NodeId pos) const { return times_[pos]; }

  /// Positions of the parents of position `pos` — N_in(u, a) of the paper.
  std::span<const NodeId> Parents(NodeId pos) const {
    return {parents_.data() + parent_offsets_[pos],
            parents_.data() + parent_offsets_[pos + 1]};
  }

  /// Out-edge indexes (into the social graph) of the parent edges of
  /// `pos`, aligned with Parents(pos). Lets consumers look up per-edge
  /// learned parameters (EM probabilities, tau delays) without a search.
  std::span<const EdgeIndex> ParentEdges(NodeId pos) const {
    return {parent_edges_.data() + parent_offsets_[pos],
            parent_edges_.data() + parent_offsets_[pos + 1]};
  }

  /// d_in(u, a): number of potential influencers of the user at `pos`.
  std::uint32_t InDegree(NodeId pos) const {
    return static_cast<std::uint32_t>(parent_offsets_[pos + 1] -
                                      parent_offsets_[pos]);
  }

  /// True iff position `pos` is an initiator (no parents).
  bool IsInitiator(NodeId pos) const { return InDegree(pos) == 0; }

  /// User ids of all initiators, in chronological order. These are the
  /// ground-truth seed sets of the spread-prediction experiments.
  std::vector<NodeId> InitiatorUsers() const;

  /// Position of `user` in this DAG, or kInvalidNode if absent. O(size).
  NodeId PositionOf(NodeId user) const;

  /// Total number of parent edges |E(a)|.
  std::size_t num_edges() const { return parents_.size(); }

  /// Longest-path depth of every position: 0 for initiators, else
  /// 1 + max over parents. Positions of equal level never depend on each
  /// other (every parent is at a strictly smaller level), which makes the
  /// level index a wavefront schedule: the rows of one level can be built
  /// concurrently once all earlier levels are finalized
  /// (ScanDagRangeSharded's phase B, docs/parallelism.md). Appends into
  /// `*levels` after clearing it and returns the number of distinct
  /// levels (max level + 1; 0 for an empty DAG). O(|E(a)|), computed
  /// once per scan.
  std::uint32_t ComputeLevels(std::vector<std::uint32_t>* levels) const;

 private:
  friend PropagationDag BuildPropagationDag(const Graph& g,
                                            std::span<const ActionTuple>
                                                trace);

  std::vector<NodeId> users_;
  std::vector<Timestamp> times_;
  std::vector<std::uint32_t> parent_offsets_;  // size+1
  std::vector<NodeId> parents_;                // positions, ascending
  std::vector<EdgeIndex> parent_edges_;        // aligned with parents_
};

/// Builds G(a) from a chronological trace (as returned by
/// ActionLog::ActionTrace). Tuples with equal timestamps are treated as
/// simultaneous: neither can be the other's parent.
PropagationDag BuildPropagationDag(const Graph& g,
                                   std::span<const ActionTuple> trace);

}  // namespace influmax

#endif  // INFLUMAX_ACTIONLOG_PROPAGATION_DAG_H_
