#include "actionlog/action_log.h"

#include <algorithm>
#include <cmath>

#include "common/flat_hash.h"

namespace influmax {

Timestamp ActionLog::TimeOf(NodeId u, ActionId a) const {
  const auto actions = UserActions(u);
  const auto it = std::lower_bound(
      actions.begin(), actions.end(), a,
      [](const UserAction& ua, ActionId needle) { return ua.action < needle; });
  if (it != actions.end() && it->action == a) return it->time;
  return kNeverPerformed;
}

ActionLog ActionLog::RestrictToActions(
    const std::vector<ActionId>& actions) const {
  ActionLog out;
  out.num_users_ = num_users_;
  out.original_action_id_.reserve(actions.size());
  out.action_offsets_.reserve(actions.size() + 1);
  out.action_offsets_.push_back(0);
  ActionId next = 0;
  for (ActionId a : actions) {
    for (const ActionTuple& t : ActionTrace(a)) {
      out.tuples_.push_back({t.user, next, t.time});
    }
    out.action_offsets_.push_back(out.tuples_.size());
    out.original_action_id_.push_back(original_action_id_[a]);
    ++next;
  }
  // Rebuild the per-user index.
  out.user_offsets_.assign(num_users_ + 1, 0);
  for (const ActionTuple& t : out.tuples_) out.user_offsets_[t.user + 1]++;
  for (NodeId u = 0; u < num_users_; ++u) {
    out.user_offsets_[u + 1] += out.user_offsets_[u];
  }
  out.user_actions_.resize(out.tuples_.size());
  std::vector<std::uint64_t> cursor(out.user_offsets_.begin(),
                                    out.user_offsets_.end() - 1);
  for (const ActionTuple& t : out.tuples_) {
    out.user_actions_[cursor[t.user]++] = {t.action, t.time};
  }
  // tuples_ are grouped by new action id in increasing order, and actions
  // were appended in increasing new-id order, so user_actions_ is sorted
  // by action id within each user.
  return out;
}

ActionLog ActionLog::RestrictToUsers(const std::vector<NodeId>& user_new_id,
                                     NodeId new_num_users) const {
  ActionLogBuilder builder(new_num_users);
  for (ActionId a = 0; a < num_actions(); ++a) {
    for (const ActionTuple& t : ActionTrace(a)) {
      const NodeId nu = user_new_id[t.user];
      if (nu != kInvalidNode) {
        builder.Add(nu, original_action_id_[a], t.time);
      }
    }
  }
  Result<ActionLog> rebuilt = builder.Build();
  // Inputs came from a valid log, so rebuilding cannot fail.
  return std::move(rebuilt).value();
}

std::uint64_t ActionLog::MemoryBytes() const {
  return tuples_.size() * sizeof(ActionTuple) +
         action_offsets_.size() * sizeof(std::uint64_t) +
         user_offsets_.size() * sizeof(std::uint64_t) +
         user_actions_.size() * sizeof(UserAction) +
         original_action_id_.size() * sizeof(std::uint32_t);
}

Result<ActionLog> ActionLogBuilder::Build() {
  for (const RawTuple& t : raw_) {
    if (t.user >= num_users_) {
      return Status::InvalidArgument("tuple user " + std::to_string(t.user) +
                                     " out of range for " +
                                     std::to_string(num_users_) + " users");
    }
    if (!std::isfinite(t.time)) {
      return Status::InvalidArgument("tuple time must be finite");
    }
  }

  // Densify action ids, preserving the numeric order of the input ids.
  std::vector<std::uint32_t> distinct;
  distinct.reserve(raw_.size());
  for (const RawTuple& t : raw_) distinct.push_back(t.action);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  FlatHashMap<std::uint32_t, ActionId> dense;
  dense.Reserve(distinct.size());
  for (ActionId i = 0; i < distinct.size(); ++i) dense[distinct[i]] = i;

  ActionLog log;
  log.num_users_ = num_users_;
  log.original_action_id_ = std::move(distinct);
  log.tuples_.reserve(raw_.size());
  for (const RawTuple& t : raw_) {
    log.tuples_.push_back({t.user, dense[t.action], t.time});
  }
  raw_.clear();
  raw_.shrink_to_fit();

  // Sort by (action, time, user); then drop repeat performances keeping
  // the earliest.
  std::sort(log.tuples_.begin(), log.tuples_.end(),
            [](const ActionTuple& a, const ActionTuple& b) {
              if (a.action != b.action) return a.action < b.action;
              if (a.time != b.time) return a.time < b.time;
              return a.user < b.user;
            });
  {
    FlatHashSet<std::uint64_t> performed;
    performed.Reserve(log.tuples_.size());
    auto key = [](ActionId a, NodeId u) {
      return (static_cast<std::uint64_t>(a) << 32) | u;
    };
    std::erase_if(log.tuples_, [&](const ActionTuple& t) {
      const bool inserted = performed.Insert(key(t.action, t.user));
      return !inserted;  // later (>= time) duplicate: drop
    });
  }

  const ActionId num_actions =
      static_cast<ActionId>(log.original_action_id_.size());
  log.action_offsets_.assign(num_actions + 1, 0);
  for (const ActionTuple& t : log.tuples_) {
    log.action_offsets_[t.action + 1]++;
  }
  for (ActionId a = 0; a < num_actions; ++a) {
    log.action_offsets_[a + 1] += log.action_offsets_[a];
  }

  // Per-user index; counting pass over action-sorted tuples keeps each
  // user's actions sorted by action id.
  log.user_offsets_.assign(num_users_ + 1, 0);
  for (const ActionTuple& t : log.tuples_) log.user_offsets_[t.user + 1]++;
  for (NodeId u = 0; u < num_users_; ++u) {
    log.user_offsets_[u + 1] += log.user_offsets_[u];
  }
  log.user_actions_.resize(log.tuples_.size());
  std::vector<std::uint64_t> cursor(log.user_offsets_.begin(),
                                    log.user_offsets_.end() - 1);
  for (const ActionTuple& t : log.tuples_) {
    log.user_actions_[cursor[t.user]++] = {t.action, t.time};
  }
  return log;
}

ActionLogStats ComputeActionLogStats(const ActionLog& log) {
  ActionLogStats stats;
  stats.num_users = log.num_users();
  stats.num_propagations = log.num_actions();
  stats.num_tuples = log.num_tuples();
  for (ActionId a = 0; a < log.num_actions(); ++a) {
    stats.max_propagation_size =
        std::max(stats.max_propagation_size, log.ActionSize(a));
  }
  stats.avg_propagation_size =
      log.num_actions() == 0
          ? 0.0
          : static_cast<double>(log.num_tuples()) / log.num_actions();
  for (NodeId u = 0; u < log.num_users(); ++u) {
    if (log.ActionsPerformedBy(u) > 0) ++stats.active_users;
  }
  stats.avg_actions_per_user =
      stats.active_users == 0
          ? 0.0
          : static_cast<double>(log.num_tuples()) / stats.active_users;
  return stats;
}

}  // namespace influmax
