#ifndef INFLUMAX_ACTIONLOG_SPLIT_H_
#define INFLUMAX_ACTIONLOG_SPLIT_H_

#include <vector>

#include "actionlog/action_log.h"
#include "common/status.h"

namespace influmax {

/// Train/test split of an action log by whole propagation traces,
/// reproducing Section 3 of the paper: "we sorted the propagation traces
/// based on their size and put every fifth propagation in this ranking in
/// the test set", which keeps the size distributions of the two sets
/// similar. A trace is never split across the two sets.
struct SplitConfig {
  /// Every `stride`-th trace in the size ranking goes to test.
  std::uint32_t stride = 5;
  /// Which residue of the ranking goes to test (0 would put the single
  /// largest trace in test; the default keeps it in training).
  std::uint32_t phase = 2;
};

struct TrainTestSplit {
  ActionLog train;
  ActionLog test;
  /// Dense action ids (in the source log) that went to each side.
  std::vector<ActionId> train_actions;
  std::vector<ActionId> test_actions;
};

/// Splits `log` per `config`. Traces are ranked by descending size (ties
/// by action id). Returns InvalidArgument for stride < 2 or phase >=
/// stride.
Result<TrainTestSplit> SplitByPropagationSize(const ActionLog& log,
                                              const SplitConfig& config);

/// Selects a training prefix by *tuple budget*: whole traces are drawn in
/// a deterministic pseudo-random order (seeded shuffle) until at least
/// `max_tuples` tuples are accumulated. This reproduces the scalability
/// experiments (Figures 8 and 9): "we created the training data set by
/// randomly choosing propagation traces from the complete action log".
ActionLog SampleByTupleBudget(const ActionLog& log, std::size_t max_tuples,
                              std::uint64_t seed);

}  // namespace influmax

#endif  // INFLUMAX_ACTIONLOG_SPLIT_H_
