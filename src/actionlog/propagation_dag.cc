#include "actionlog/propagation_dag.h"

#include <algorithm>

#include "common/flat_hash.h"

namespace influmax {

std::vector<NodeId> PropagationDag::InitiatorUsers() const {
  std::vector<NodeId> out;
  for (NodeId pos = 0; pos < size(); ++pos) {
    if (IsInitiator(pos)) out.push_back(users_[pos]);
  }
  return out;
}

std::uint32_t PropagationDag::ComputeLevels(
    std::vector<std::uint32_t>* levels) const {
  levels->clear();
  levels->reserve(users_.size());
  std::uint32_t num_levels = 0;
  // Positions are a topological order, so one forward pass suffices.
  for (NodeId pos = 0; pos < size(); ++pos) {
    std::uint32_t level = 0;
    for (const NodeId parent : Parents(pos)) {
      level = std::max(level, (*levels)[parent] + 1);
    }
    levels->push_back(level);
    num_levels = std::max(num_levels, level + 1);
  }
  return num_levels;
}

NodeId PropagationDag::PositionOf(NodeId user) const {
  for (NodeId pos = 0; pos < size(); ++pos) {
    if (users_[pos] == user) return pos;
  }
  return kInvalidNode;
}

PropagationDag BuildPropagationDag(const Graph& g,
                                   std::span<const ActionTuple> trace) {
  PropagationDag dag;
  const NodeId n = static_cast<NodeId>(trace.size());
  dag.users_.reserve(n);
  dag.times_.reserve(n);
  dag.parent_offsets_.reserve(n + 1);
  dag.parent_offsets_.push_back(0);

  // Position of each user activated strictly before the current timestamp
  // group. Users in the current group are staged and committed when the
  // timestamp advances, so simultaneous activations never parent each
  // other.
  FlatHashMap<NodeId, NodeId> activated;
  activated.Reserve(n);
  std::size_t group_begin = 0;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0 && trace[i].time != trace[i - 1].time) {
      for (std::size_t j = group_begin; j < i; ++j) {
        auto [pos, inserted] = activated.TryEmplace(trace[j].user);
        if (inserted) *pos = static_cast<NodeId>(j);
      }
      group_begin = i;
    }
    const NodeId u = trace[i].user;
    dag.users_.push_back(u);
    dag.times_.push_back(trace[i].time);
    // Parents: in-neighbors of u in the social graph that are already
    // committed (strictly earlier time). InNeighbors is sorted by source
    // user id; we keep parent order sorted by *position* so the DP loops
    // read memory forward.
    const std::size_t before = dag.parents_.size();
    const EdgeIndex in_base = g.InEdgeBegin(u);
    const auto in_neighbors = g.InNeighbors(u);
    for (std::size_t j = 0; j < in_neighbors.size(); ++j) {
      const NodeId* pos = activated.Find(in_neighbors[j]);
      if (pos != nullptr) {
        dag.parents_.push_back(*pos);
        dag.parent_edges_.push_back(g.InPosToOutEdge(in_base + j));
      }
    }
    // Joint sort of (parents, parent_edges) by parent position.
    const std::size_t added = dag.parents_.size() - before;
    if (added > 1) {
      std::vector<std::pair<NodeId, EdgeIndex>> pairs(added);
      for (std::size_t j = 0; j < added; ++j) {
        pairs[j] = {dag.parents_[before + j], dag.parent_edges_[before + j]};
      }
      std::sort(pairs.begin(), pairs.end());
      for (std::size_t j = 0; j < added; ++j) {
        dag.parents_[before + j] = pairs[j].first;
        dag.parent_edges_[before + j] = pairs[j].second;
      }
    }
    dag.parent_offsets_.push_back(
        static_cast<std::uint32_t>(dag.parents_.size()));
  }
  return dag;
}

}  // namespace influmax
