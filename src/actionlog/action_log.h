#ifndef INFLUMAX_ACTIONLOG_ACTION_LOG_H_
#define INFLUMAX_ACTIONLOG_ACTION_LOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace influmax {

/// One row of the action log relation L(User, Action, Time): user `user`
/// performed action `action` at time `time`.
struct ActionTuple {
  NodeId user = 0;
  ActionId action = 0;
  Timestamp time = 0.0;

  friend bool operator==(const ActionTuple&, const ActionTuple&) = default;
};

/// A user's participation in one action (per-user index entry).
struct UserAction {
  ActionId action = 0;
  Timestamp time = 0.0;
};

/// Immutable action log L, stored sorted by (action, time, user) — the
/// order Algorithm 2 of the paper scans it in. Provides:
///  * per-action chronological traces ("propagations"),
///  * per-user action indexes (A_u counts and t(u, a) lookups),
///  * summary statistics (Table 1).
///
/// A user performs an action at most once (enforced at build time by
/// keeping the earliest tuple, matching the paper's data model).
class ActionLog {
 public:
  ActionLog() = default;

  /// Node-id space this log refers to (== graph num_nodes by convention).
  NodeId num_users() const { return num_users_; }

  /// Number of distinct actions (dense ids 0..num_actions-1).
  ActionId num_actions() const {
    return static_cast<ActionId>(action_offsets_.empty()
                                     ? 0
                                     : action_offsets_.size() - 1);
  }

  /// Total number of tuples |L|.
  std::size_t num_tuples() const { return tuples_.size(); }

  /// Chronological propagation trace of action `a` (ties in time are
  /// ordered by user id; consumers must treat equal-time tuples as
  /// mutually non-influencing).
  std::span<const ActionTuple> ActionTrace(ActionId a) const {
    return {tuples_.data() + action_offsets_[a],
            tuples_.data() + action_offsets_[a + 1]};
  }

  /// Number of users who performed action `a` (propagation size).
  NodeId ActionSize(ActionId a) const {
    return static_cast<NodeId>(action_offsets_[a + 1] - action_offsets_[a]);
  }

  /// A_u: number of actions user `u` performed.
  std::uint32_t ActionsPerformedBy(NodeId u) const {
    return static_cast<std::uint32_t>(user_offsets_[u + 1] -
                                      user_offsets_[u]);
  }

  /// Actions performed by `u`, sorted by action id.
  std::span<const UserAction> UserActions(NodeId u) const {
    return {user_actions_.data() + user_offsets_[u],
            user_actions_.data() + user_offsets_[u + 1]};
  }

  /// t(u, a), or kNeverPerformed when u never performed a. O(log A_u).
  Timestamp TimeOf(NodeId u, ActionId a) const;

  /// True iff u performed a.
  bool Performed(NodeId u, ActionId a) const {
    return TimeOf(u, a) != kNeverPerformed;
  }

  /// All tuples, sorted by (action, time, user).
  const std::vector<ActionTuple>& tuples() const { return tuples_; }

  /// The action id this dense id had in the builder's input (useful when
  /// correlating sub-logs with the original log).
  std::uint32_t OriginalActionId(ActionId a) const {
    return original_action_id_[a];
  }

  /// Restriction of this log to the given actions: a new log containing
  /// only their tuples, with actions renumbered densely in the given
  /// order. Original ids are preserved through OriginalActionId() chains.
  ActionLog RestrictToActions(const std::vector<ActionId>& actions) const;

  /// Restriction of this log to tuples whose user is in `user_new_id`
  /// (original id -> new id, kInvalidNode = drop), renumbering users.
  /// Actions that lose all tuples are dropped. Used when carving a
  /// community sub-dataset (Section 3 of the paper).
  ActionLog RestrictToUsers(const std::vector<NodeId>& user_new_id,
                            NodeId new_num_users) const;

  /// Approximate heap footprint in bytes.
  std::uint64_t MemoryBytes() const;

 private:
  friend class ActionLogBuilder;

  NodeId num_users_ = 0;
  std::vector<ActionTuple> tuples_;          // sorted (action, time, user)
  std::vector<std::uint64_t> action_offsets_;  // size num_actions+1
  std::vector<std::uint64_t> user_offsets_;    // size num_users+1
  std::vector<UserAction> user_actions_;       // CSR payload, per-user
  std::vector<std::uint32_t> original_action_id_;  // dense -> input id
};

/// Accumulates raw (user, action, time) triples and freezes them into an
/// ActionLog. Input action ids are arbitrary uint32 values and are
/// densified; duplicate (user, action) pairs keep the earliest time.
class ActionLogBuilder {
 public:
  explicit ActionLogBuilder(NodeId num_users) : num_users_(num_users) {}

  /// Queues one tuple. Out-of-range users are reported at Build() time.
  void Add(NodeId user, std::uint32_t action, Timestamp time) {
    raw_.push_back({user, action, time});
  }

  std::size_t pending_tuples() const { return raw_.size(); }

  /// Validates, densifies actions, dedupes, sorts, and builds indexes.
  /// The builder is left empty and reusable.
  Result<ActionLog> Build();

 private:
  struct RawTuple {
    NodeId user;
    std::uint32_t action;
    Timestamp time;
  };

  NodeId num_users_;
  std::vector<RawTuple> raw_;
};

/// Summary statistics for Table 1 of the paper.
struct ActionLogStats {
  NodeId num_users = 0;
  ActionId num_propagations = 0;   // distinct actions
  std::size_t num_tuples = 0;
  double avg_propagation_size = 0.0;
  NodeId max_propagation_size = 0;
  double avg_actions_per_user = 0.0;  // over users with >= 1 action
  NodeId active_users = 0;            // users with >= 1 action
};

/// Computes summary statistics of `log` in one pass.
ActionLogStats ComputeActionLogStats(const ActionLog& log);

}  // namespace influmax

#endif  // INFLUMAX_ACTIONLOG_ACTION_LOG_H_
