#ifndef INFLUMAX_ACTIONLOG_LOG_IO_H_
#define INFLUMAX_ACTIONLOG_LOG_IO_H_

#include <string>

#include "actionlog/action_log.h"
#include "common/status.h"

namespace influmax {

/// Text action-log format, one `user<TAB>action<TAB>time` triple per line;
/// `#` comments and blank lines skipped. An optional first line
/// `users<TAB><n>` fixes the user-id space; otherwise it is max(user)+1.
Result<ActionLog> ReadActionLogFile(const std::string& path);

/// Writes `log` in the same format (with the `users` header). Action ids
/// written are the original (pre-densification) ids so restrictions
/// round-trip against their source logs.
Status WriteActionLogFile(const ActionLog& log, const std::string& path);

/// Binary action-log format (fast local round-trips; ~16 bytes/tuple).
Status WriteActionLogBinary(const ActionLog& log, const std::string& path);
Result<ActionLog> ReadActionLogBinary(const std::string& path);

}  // namespace influmax

#endif  // INFLUMAX_ACTIONLOG_LOG_IO_H_
