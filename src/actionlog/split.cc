#include "actionlog/split.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace influmax {

Result<TrainTestSplit> SplitByPropagationSize(const ActionLog& log,
                                              const SplitConfig& config) {
  if (config.stride < 2) {
    return Status::InvalidArgument("split stride must be >= 2");
  }
  if (config.phase >= config.stride) {
    return Status::InvalidArgument("split phase must be < stride");
  }

  std::vector<ActionId> ranking(log.num_actions());
  std::iota(ranking.begin(), ranking.end(), 0u);
  std::sort(ranking.begin(), ranking.end(), [&](ActionId a, ActionId b) {
    if (log.ActionSize(a) != log.ActionSize(b)) {
      return log.ActionSize(a) > log.ActionSize(b);
    }
    return a < b;
  });

  TrainTestSplit split;
  for (std::size_t rank = 0; rank < ranking.size(); ++rank) {
    if (rank % config.stride == config.phase) {
      split.test_actions.push_back(ranking[rank]);
    } else {
      split.train_actions.push_back(ranking[rank]);
    }
  }
  // Restore id order so the restricted logs keep the original relative
  // action numbering.
  std::sort(split.train_actions.begin(), split.train_actions.end());
  std::sort(split.test_actions.begin(), split.test_actions.end());
  split.train = log.RestrictToActions(split.train_actions);
  split.test = log.RestrictToActions(split.test_actions);
  return split;
}

ActionLog SampleByTupleBudget(const ActionLog& log, std::size_t max_tuples,
                              std::uint64_t seed) {
  std::vector<ActionId> order(log.num_actions());
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  std::vector<ActionId> chosen;
  std::size_t tuples = 0;
  for (ActionId a : order) {
    if (tuples >= max_tuples) break;
    chosen.push_back(a);
    tuples += log.ActionSize(a);
  }
  std::sort(chosen.begin(), chosen.end());
  return log.RestrictToActions(chosen);
}

}  // namespace influmax
