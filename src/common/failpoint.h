#ifndef INFLUMAX_COMMON_FAILPOINT_H_
#define INFLUMAX_COMMON_FAILPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// Fault-injection failpoints (docs/durability.md).
///
/// A failpoint is a named site on an I/O or lifecycle path that tests
/// (and manual chaos drills via `serve_shards`) can arm to fail in a
/// controlled way: return an error, tear a file at an exact byte
/// offset, simulate a process crash, or inject latency. Sites are
/// compiled in only under INFLUMAX_FAILPOINTS (a CMake option, OFF by
/// default); the default build expands every site macro to nothing, so
/// production binaries carry zero overhead — not even a branch.
///
/// The arming API below is always linkable so tools can expose flags
/// unconditionally; when the framework is compiled out, ArmFailpoint
/// reports FailedPrecondition and everything else no-ops.

namespace influmax {

#ifdef INFLUMAX_FAILPOINTS
inline constexpr bool kFailpointsEnabled = true;
#else
inline constexpr bool kFailpointsEnabled = false;
#endif

enum class FailpointMode : std::uint8_t {
  kOff = 0,
  kError,      ///< the site fails with Status::IoError
  kTorn,       ///< writers: cut the file at byte offset `arg`, then error
  kTornCrash,  ///< writers: cut the file at `arg`, then crash
  kCrash,      ///< invoke the crash handler (default: abort)
  kDelay,      ///< sleep `arg` milliseconds, then continue normally
};

/// What an armed failpoint does when its site is evaluated.
struct FailpointSpec {
  FailpointMode mode = FailpointMode::kOff;
  std::uint64_t arg = 0;   ///< kTorn*: absolute byte offset; kDelay: millis
  std::uint64_t skip = 0;  ///< pass this many evaluations before firing
  std::int64_t limit = -1; ///< fire at most this many times; -1 = forever
};

/// True when this binary was built with INFLUMAX_FAILPOINTS.
bool FailpointsCompiledIn();

/// Arms `name` with `spec`. FailedPrecondition when the framework is
/// compiled out (so a `--failpoints` flag errors loudly instead of
/// silently testing nothing); InvalidArgument on a kOff spec (use
/// DisarmFailpoint).
Status ArmFailpoint(std::string_view name, const FailpointSpec& spec);
void DisarmFailpoint(std::string_view name);
void DisarmAllFailpoints();

/// Times the armed spec at `name` actually fired (tore, errored,
/// crashed, or delayed) — not mere evaluations.
std::uint64_t FailpointTripCount(std::string_view name);

/// Names known to the registry: every armed point plus every site
/// evaluated while the registry was active (armed or tracing).
std::vector<std::string> FailpointCatalog();

/// Parses "error", "crash", "delay:50", "torn:128", "torncrash:4096",
/// "off" — each optionally suffixed with "@<skip>" and/or "#<limit>",
/// e.g. "error@2#1" = pass twice, then fail exactly once.
Result<FailpointSpec> ParseFailpointSpec(std::string_view text);

/// Arms a ';'- or ','-separated list of "name=spec" pairs (the
/// `--failpoints` flag / INFLUMAX_FAILPOINTS_ARM env format).
Status ArmFailpointsFromSpec(std::string_view list);

/// Reads INFLUMAX_FAILPOINTS_ARM and arms it; called automatically at
/// static-init time in failpoint-enabled builds.
Status ArmFailpointsFromEnv();

/// Invoked by kCrash/kTornCrash sites in place of a real crash. Tests
/// install a handler that throws (FailpointCrash below) so the
/// "process death" unwinds to the test without running the aborted
/// operation's cleanup; nullptr restores the default, which logs and
/// aborts. The handler must not return.
using FailpointCrashHandler = void (*)(const char* site);
void SetFailpointCrashHandler(FailpointCrashHandler handler);

/// Conventional payload for test crash handlers to throw.
struct FailpointCrash {
  std::string site;
};

/// Ordered site-visit trace, recorded while enabled: the deterministic
/// "crashed filesystem" harness asserts protocol order (every
/// *.fsync before current.rename) from it. Take clears.
void EnableFailpointTrace(bool enabled);
std::vector<std::string> TakeFailpointTrace();

namespace failpoint_internal {

struct FailpointHit {
  FailpointMode mode;
  std::uint64_t arg;
};

/// Evaluates site `name`: records it in the catalog/trace when the
/// registry is active and returns the armed effect when it fires.
/// kTorn/kTornCrash hits are returned without consuming the fire
/// budget — the site calls RecordTornTrip when it actually tears
/// (a write wholly below the cut offset passes untouched).
std::optional<FailpointHit> CheckSite(const char* name);

/// Applies a non-torn hit: kError -> IoError, kDelay -> sleep + OK,
/// kCrash -> Crash below. Torn hits reaching here (a site with no
/// byte stream to cut, e.g. a reader) degrade to kError.
Status HitEffect(const char* name, const FailpointHit& hit);

[[noreturn]] void Crash(const char* name);
void RecordTornTrip(const char* name);

}  // namespace failpoint_internal
}  // namespace influmax

/// Site macro: evaluates the named failpoint and `return`s a non-OK
/// Status from the enclosing function when it fires with an error
/// effect (works in Result<T>-returning functions via implicit
/// conversion). Compiles to nothing when failpoints are off.
#ifdef INFLUMAX_FAILPOINTS
#define INFLUMAX_FAILPOINT(name)                                            \
  do {                                                                      \
    if (auto _fp_hit = ::influmax::failpoint_internal::CheckSite(name)) {   \
      ::influmax::Status _fp_st =                                           \
          ::influmax::failpoint_internal::HitEffect(name, *_fp_hit);        \
      if (!_fp_st.ok()) return _fp_st;                                      \
    }                                                                       \
  } while (0)
#else
#define INFLUMAX_FAILPOINT(name) \
  do {                           \
  } while (0)
#endif

#endif  // INFLUMAX_COMMON_FAILPOINT_H_
