#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.h"

namespace influmax {

bool IsTransientError(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kUnavailable;
}

Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& attempt,
                    Counter* attempts_counter,
                    const std::function<void(std::uint64_t)>& sleep_ms,
                    const Deadline& deadline) {
  Rng rng(policy.jitter_seed);
  double backoff = static_cast<double>(policy.initial_backoff_ms);
  std::uint64_t slept = 0;
  const std::uint32_t attempts = std::max<std::uint32_t>(1, policy.max_attempts);
  Status status;
  for (std::uint32_t i = 0; i < attempts; ++i) {
    if (attempts_counter != nullptr) attempts_counter->Increment();
    status = attempt();
    if (status.ok()) return status;
    if (policy.retryable != nullptr && !policy.retryable(status)) {
      return status;
    }
    if (i + 1 >= attempts) break;
    // Jitter in [backoff/2, backoff]: decorrelates watcher fleets
    // hammering a shared filesystem without ever halving below the
    // floor a transient needs to clear.
    const std::uint64_t delay =
        static_cast<std::uint64_t>(backoff * (0.5 + 0.5 * rng.NextDouble()));
    if (slept + delay > policy.budget_ms) break;
    // A sleep that would overshoot the caller's deadline buys nothing:
    // the next attempt could not finish in time anyway. Stop now and
    // hand the last status back while the caller still has budget to
    // act on it (fail over, degrade, report).
    if (deadline.expired() || delay > deadline.remaining_ms()) break;
    slept += delay;
    if (sleep_ms) {
      sleep_ms(delay);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    backoff = std::min(backoff * policy.multiplier,
                       static_cast<double>(policy.max_backoff_ms));
  }
  return status;
}

}  // namespace influmax
