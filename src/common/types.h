#ifndef INFLUMAX_COMMON_TYPES_H_
#define INFLUMAX_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace influmax {

/// Dense node identifier. Nodes of a graph are always numbered 0..n-1.
using NodeId = std::uint32_t;

/// Dense action identifier. Actions of a log are numbered 0..m-1.
using ActionId = std::uint32_t;

/// Continuous event time. The credit-distribution model (Eq. 9 of the
/// paper) applies an exponential decay in (t(u,a) - t(v,a)), so time is
/// kept continuous rather than discretized.
using Timestamp = double;

/// Index into a CSR edge array.
using EdgeIndex = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no action".
inline constexpr ActionId kInvalidAction =
    std::numeric_limits<ActionId>::max();

/// Sentinel timestamp for "user never performed the action"; compares
/// greater than every real timestamp.
inline constexpr Timestamp kNeverPerformed =
    std::numeric_limits<Timestamp>::infinity();

}  // namespace influmax

#endif  // INFLUMAX_COMMON_TYPES_H_
