#ifndef INFLUMAX_COMMON_FLAGS_H_
#define INFLUMAX_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace influmax {

/// Minimal command-line flag parser used by the experiment binaries in
/// bench/ and examples/. Supports `--name=value`, `--name value`, and bare
/// boolean `--name`. Unknown flags are an error so that typos in sweep
/// scripts fail loudly.
///
/// Usage:
///   FlagParser flags;
///   int k = 50;
///   flags.AddInt("k", &k, "number of seeds");
///   INFLUMAX_CHECK_OK(flags.Parse(argc, argv));
class FlagParser {
 public:
  /// Registers an int64 flag backed by `*target` (default = current value).
  void AddInt(const std::string& name, std::int64_t* target,
              const std::string& help);
  /// Registers an int flag backed by `*target`.
  void AddInt(const std::string& name, int* target, const std::string& help);
  /// Registers a double flag backed by `*target`.
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  /// Registers a string flag backed by `*target`.
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);
  /// Registers a bool flag backed by `*target` (`--name`, `--name=false`).
  void AddBool(const std::string& name, bool* target, const std::string& help);

  /// Parses argv; fills registered targets. Returns InvalidArgument on an
  /// unknown flag or malformed value. `--help` populates HelpRequested().
  Status Parse(int argc, char** argv);

  /// True if `--help` was seen; callers should print Usage() and exit 0.
  bool help_requested() const { return help_requested_; }

  /// Human-readable flag summary.
  std::string Usage(const std::string& program) const;

 private:
  enum class Kind { kInt64, kInt, kDouble, kString, kBool };
  struct FlagInfo {
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, FlagInfo> flags_;
  bool help_requested_ = false;
};

}  // namespace influmax

#endif  // INFLUMAX_COMMON_FLAGS_H_
