#ifndef INFLUMAX_COMMON_STATUS_H_
#define INFLUMAX_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace influmax {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kCorruption,
  kUnimplemented,
  kInternal,
  kUnavailable,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight status object for fallible operations (I/O, parsing,
/// configuration validation). Modeled after the common database-library
/// idiom (RocksDB/Arrow): cheap to copy in the OK case, carries a message
/// otherwise. Programming errors are asserted, not Status-returned.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A peer, replica, or resource that cannot serve right now but may
  /// after a retry or failover: refused/reset/timed-out connections, a
  /// server at session capacity, a range with no live replica. The
  /// transient-network class RetryPolicy treats as retryable
  /// (common/retry.h); deterministic failures (Corruption, NotFound)
  /// must not use it.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Value-or-error holder, the companion of Status for functions that
/// produce a value. `value()` asserts on access when not ok.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value)  // NOLINT(runtime/explicit)
      : value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (failure).
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result must not be built from an OK status");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok() && "Result::value() on error");
    return *value_;
  }
  T& value() & {
    assert(ok() && "Result::value() on error");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "Result::value() on error");
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value
};

/// Propagates a non-OK Status out of the current function.
#define INFLUMAX_RETURN_IF_ERROR(expr)                 \
  do {                                                 \
    ::influmax::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                         \
  } while (0)

}  // namespace influmax

#endif  // INFLUMAX_COMMON_STATUS_H_
