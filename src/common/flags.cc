#include "common/flags.h"

#include <cstdlib>
#include <sstream>

namespace influmax {
namespace {

std::string Repr(std::int64_t v) { return std::to_string(v); }
std::string Repr(int v) { return std::to_string(v); }
std::string Repr(double v) {
  std::ostringstream oss;
  oss << v;
  return oss.str();
}
std::string Repr(const std::string& v) { return v.empty() ? "\"\"" : v; }
std::string Repr(bool v) { return v ? "true" : "false"; }

}  // namespace

void FlagParser::AddInt(const std::string& name, std::int64_t* target,
                        const std::string& help) {
  flags_[name] = {Kind::kInt64, target, help, Repr(*target)};
}

void FlagParser::AddInt(const std::string& name, int* target,
                        const std::string& help) {
  flags_[name] = {Kind::kInt, target, help, Repr(*target)};
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help) {
  flags_[name] = {Kind::kDouble, target, help, Repr(*target)};
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help) {
  flags_[name] = {Kind::kString, target, help, Repr(*target)};
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  flags_[name] = {Kind::kBool, target, help, Repr(*target)};
}

Status FlagParser::SetValue(const std::string& name,
                            const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  FlagInfo& info = it->second;
  errno = 0;
  char* end = nullptr;
  switch (info.kind) {
    case Kind::kInt64: {
      long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
        return Status::InvalidArgument("flag --" + name +
                                       ": bad integer '" + value + "'");
      }
      *static_cast<std::int64_t*>(info.target) = v;
      break;
    }
    case Kind::kInt: {
      long v = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
        return Status::InvalidArgument("flag --" + name +
                                       ": bad integer '" + value + "'");
      }
      *static_cast<int*>(info.target) = static_cast<int>(v);
      break;
    }
    case Kind::kDouble: {
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
        return Status::InvalidArgument("flag --" + name +
                                       ": bad double '" + value + "'");
      }
      *static_cast<double*>(info.target) = v;
      break;
    }
    case Kind::kString:
      *static_cast<std::string*>(info.target) = value;
      break;
    case Kind::kBool: {
      if (value == "true" || value == "1" || value.empty()) {
        *static_cast<bool*>(info.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(info.target) = false;
      } else {
        return Status::InvalidArgument("flag --" + name + ": bad bool '" +
                                       value + "'");
      }
      break;
    }
  }
  return Status::OK();
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument '" +
                                     arg + "'");
    }
    arg = arg.substr(2);
    if (arg == "help") {
      help_requested_ = true;
      continue;
    }
    std::string name;
    std::string value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it == flags_.end()) {
        return Status::InvalidArgument("unknown flag --" + name);
      }
      if (it->second.kind == Kind::kBool) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("flag --" + name +
                                         " expects a value");
        }
        value = argv[++i];
      }
    }
    INFLUMAX_RETURN_IF_ERROR(SetValue(name, value));
  }
  return Status::OK();
}

std::string FlagParser::Usage(const std::string& program) const {
  std::ostringstream oss;
  oss << "Usage: " << program << " [flags]\n";
  for (const auto& [name, info] : flags_) {
    oss << "  --" << name << "  " << info.help
        << " (default: " << info.default_repr << ")\n";
  }
  return oss.str();
}

}  // namespace influmax
