#ifndef INFLUMAX_COMMON_BINARY_IO_H_
#define INFLUMAX_COMMON_BINARY_IO_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace influmax {

/// Little binary container format shared by the graph and action-log
/// serializers: an 8-byte magic, a format version, then typed sections.
/// Intended for fast local round-trips of generated datasets (the text
/// formats stay the interchange format); files are not portable across
/// endianness.
class BinaryWriter {
 public:
  /// Opens `path` for truncation-writing; check status() before use.
  BinaryWriter(const std::string& path, std::uint64_t magic,
               std::uint32_t version);

  const Status& status() const { return status_; }

  void WriteU32(std::uint32_t value) { WriteRaw(&value, sizeof(value)); }
  void WriteU64(std::uint64_t value) { WriteRaw(&value, sizeof(value)); }
  void WriteDouble(double value) { WriteRaw(&value, sizeof(value)); }

  /// Length-prefixed vector of trivially copyable elements.
  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(values.size());
    if (!values.empty()) {
      WriteRaw(values.data(), values.size() * sizeof(T));
    }
  }

  /// Bytes successfully queued so far (including magic + version). Format
  /// writers with fixed-layout headers (the credit snapshot) use this to
  /// verify section offsets and alignment as they write.
  std::uint64_t bytes_written() const { return bytes_written_; }

  /// Writes zero bytes until bytes_written() is a multiple of `alignment`
  /// (power of two, <= 8). Keeps 8-byte payloads mmap-aligned.
  void PadToAlignment(std::uint32_t alignment);

  /// Flushes and reports any accumulated I/O error.
  Status Finish();

  /// Names the failpoint consulted on every subsequent write (fault
  /// injection, docs/durability.md): torn-write specs cut the stream at
  /// their byte offset. Inert unless the build compiles failpoints in
  /// AND the named point is armed; `name` must outlive the writer.
  void set_failpoint(const char* name) { failpoint_ = name; }

 private:
  void WriteRaw(const void* data, std::size_t bytes);

  std::ofstream out_;
  Status status_;
  std::uint64_t bytes_written_ = 0;
  const char* failpoint_ = nullptr;
};

/// Reader counterpart; validates magic and version on open.
class BinaryReader {
 public:
  BinaryReader(const std::string& path, std::uint64_t expected_magic,
               std::uint32_t expected_version);

  const Status& status() const { return status_; }

  std::uint32_t ReadU32() {
    std::uint32_t value = 0;
    ReadRaw(&value, sizeof(value));
    return value;
  }
  std::uint64_t ReadU64() {
    std::uint64_t value = 0;
    ReadRaw(&value, sizeof(value));
    return value;
  }
  double ReadDouble() {
    double value = 0;
    ReadRaw(&value, sizeof(value));
    return value;
  }

  /// Reads a length-prefixed vector; enforces `max_elements` so corrupt
  /// length fields cannot trigger huge allocations.
  template <typename T>
  std::vector<T> ReadVector(std::uint64_t max_elements) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = ReadU64();
    if (count > max_elements) {
      Fail("vector length " + std::to_string(count) + " at byte offset " +
           std::to_string(bytes_read_ - sizeof(std::uint64_t)) +
           " exceeds limit " + std::to_string(max_elements));
      return {};
    }
    std::vector<T> values(count);
    if (count > 0) ReadRaw(values.data(), count * sizeof(T));
    return values;
  }

  /// Bytes successfully consumed so far (including magic + version).
  std::uint64_t bytes_read() const { return bytes_read_; }

  /// OK iff everything read so far was present and well-formed.
  Status Finish() const { return status_; }

  /// Failpoint consulted on every subsequent read (docs/durability.md);
  /// error specs surface as IoError so retry policies treat the
  /// injection as the transient it simulates.
  void set_failpoint(const char* name) { failpoint_ = name; }

 private:
  void ReadRaw(void* data, std::size_t bytes);
  void Fail(const std::string& message);

  std::ifstream in_;
  std::string path_;
  Status status_;
  std::uint64_t bytes_read_ = 0;
  const char* failpoint_ = nullptr;
};

/// BinaryWriter's typed-section API over an in-memory byte buffer
/// instead of a file: the wire protocol (src/net/wire.h) serializes
/// frame payloads with it, so frames speak the same section grammar as
/// every on-disk container. No magic/version prelude — a frame's header
/// carries both — and no failpoint hook (the socket layer tears whole
/// frames; mid-payload cuts are indistinguishable on a stream).
class BufferWriter {
 public:
  void WriteU32(std::uint32_t value) { WriteRaw(&value, sizeof(value)); }
  void WriteU64(std::uint64_t value) { WriteRaw(&value, sizeof(value)); }
  void WriteDouble(double value) { WriteRaw(&value, sizeof(value)); }

  /// Length-prefixed vector of trivially copyable elements.
  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(values.size());
    if (!values.empty()) {
      WriteRaw(values.data(), values.size() * sizeof(T));
    }
  }

  /// Length-prefixed byte string (error messages on the wire).
  void WriteString(const std::string& value) {
    WriteU64(value.size());
    if (!value.empty()) WriteRaw(value.data(), value.size());
  }

  std::uint64_t bytes_written() const { return buffer_.size(); }

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> TakeBuffer() { return std::move(buffer_); }

 private:
  void WriteRaw(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + bytes);
  }

  std::vector<std::uint8_t> buffer_;
};

/// Reader counterpart over a borrowed byte span (a received frame's
/// payload; the span must outlive the reader). Same defensive contract
/// as BinaryReader: short reads fail with the byte offset, and every
/// length prefix is validated against both a caller bound and the bytes
/// actually present BEFORE any allocation — a hostile frame cannot make
/// the receiver resize a vector it could never fill.
class BufferReader {
 public:
  explicit BufferReader(std::span<const std::uint8_t> data) : data_(data) {}

  const Status& status() const { return status_; }

  std::uint32_t ReadU32() {
    std::uint32_t value = 0;
    ReadRaw(&value, sizeof(value));
    return value;
  }
  std::uint64_t ReadU64() {
    std::uint64_t value = 0;
    ReadRaw(&value, sizeof(value));
    return value;
  }
  double ReadDouble() {
    double value = 0;
    ReadRaw(&value, sizeof(value));
    return value;
  }

  /// Length-prefixed vector bounded by `max_elements` and by the bytes
  /// remaining in the buffer.
  template <typename T>
  std::vector<T> ReadVector(std::uint64_t max_elements) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = ReadU64();
    if (!status_.ok()) return {};
    if (count > max_elements) {
      Fail("vector length " + std::to_string(count) + " at byte offset " +
           std::to_string(offset_ - sizeof(std::uint64_t)) +
           " exceeds limit " + std::to_string(max_elements));
      return {};
    }
    // Divide, never multiply: count * sizeof(T) can wrap to a small (or
    // zero) value for hostile counts and sail past the remaining check.
    if (count > remaining() / sizeof(T)) {
      Fail("vector of " + std::to_string(count) + " elements at byte offset " +
           std::to_string(offset_ - sizeof(std::uint64_t)) +
           " exceeds the " + std::to_string(remaining()) +
           " bytes remaining");
      return {};
    }
    std::vector<T> values(count);
    if (count > 0) ReadRaw(values.data(), count * sizeof(T));
    return values;
  }

  /// Length-prefixed byte string bounded by `max_bytes` and the buffer.
  std::string ReadString(std::uint64_t max_bytes) {
    const std::uint64_t count = ReadU64();
    if (!status_.ok()) return {};
    if (count > max_bytes || count > remaining()) {
      Fail("string length " + std::to_string(count) + " at byte offset " +
           std::to_string(offset_ - sizeof(std::uint64_t)) +
           " exceeds limit " +
           std::to_string(std::min<std::uint64_t>(max_bytes, remaining())));
      return {};
    }
    std::string value(count, '\0');
    if (count > 0) ReadRaw(value.data(), count);
    return value;
  }

  std::uint64_t bytes_read() const { return offset_; }
  std::uint64_t remaining() const { return data_.size() - offset_; }

  /// OK iff everything read so far was present and well-formed.
  Status Finish() const { return status_; }

 private:
  void ReadRaw(void* data, std::size_t bytes) {
    if (!status_.ok()) return;
    if (bytes > remaining()) {
      Fail("short read of " + std::to_string(bytes) + " bytes at byte offset " +
           std::to_string(offset_) + " (only " + std::to_string(remaining()) +
           " remain)");
      return;
    }
    std::memcpy(data, data_.data() + offset_, bytes);
    offset_ += bytes;
  }

  void Fail(const std::string& message) {
    if (status_.ok()) status_ = Status::Corruption("frame payload: " + message);
  }

  std::span<const std::uint8_t> data_;
  Status status_;
  std::uint64_t offset_ = 0;
};

/// fsync(2) of `path`'s contents / of a directory's entry table. The
/// generation swap protocol (docs/durability.md) syncs every blob and
/// the manifest before the CURRENT flip, and the directory after it, so
/// a crash can never publish a pointer to bytes that might not survive
/// the crash. ofstream cannot express this, hence the by-path helpers.
Status SyncFileToDisk(const std::string& path);
Status SyncDirToDisk(const std::string& dir);

}  // namespace influmax

#endif  // INFLUMAX_COMMON_BINARY_IO_H_
