#ifndef INFLUMAX_COMMON_BINARY_IO_H_
#define INFLUMAX_COMMON_BINARY_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace influmax {

/// Little binary container format shared by the graph and action-log
/// serializers: an 8-byte magic, a format version, then typed sections.
/// Intended for fast local round-trips of generated datasets (the text
/// formats stay the interchange format); files are not portable across
/// endianness.
class BinaryWriter {
 public:
  /// Opens `path` for truncation-writing; check status() before use.
  BinaryWriter(const std::string& path, std::uint64_t magic,
               std::uint32_t version);

  const Status& status() const { return status_; }

  void WriteU32(std::uint32_t value) { WriteRaw(&value, sizeof(value)); }
  void WriteU64(std::uint64_t value) { WriteRaw(&value, sizeof(value)); }
  void WriteDouble(double value) { WriteRaw(&value, sizeof(value)); }

  /// Length-prefixed vector of trivially copyable elements.
  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(values.size());
    if (!values.empty()) {
      WriteRaw(values.data(), values.size() * sizeof(T));
    }
  }

  /// Bytes successfully queued so far (including magic + version). Format
  /// writers with fixed-layout headers (the credit snapshot) use this to
  /// verify section offsets and alignment as they write.
  std::uint64_t bytes_written() const { return bytes_written_; }

  /// Writes zero bytes until bytes_written() is a multiple of `alignment`
  /// (power of two, <= 8). Keeps 8-byte payloads mmap-aligned.
  void PadToAlignment(std::uint32_t alignment);

  /// Flushes and reports any accumulated I/O error.
  Status Finish();

  /// Names the failpoint consulted on every subsequent write (fault
  /// injection, docs/durability.md): torn-write specs cut the stream at
  /// their byte offset. Inert unless the build compiles failpoints in
  /// AND the named point is armed; `name` must outlive the writer.
  void set_failpoint(const char* name) { failpoint_ = name; }

 private:
  void WriteRaw(const void* data, std::size_t bytes);

  std::ofstream out_;
  Status status_;
  std::uint64_t bytes_written_ = 0;
  const char* failpoint_ = nullptr;
};

/// Reader counterpart; validates magic and version on open.
class BinaryReader {
 public:
  BinaryReader(const std::string& path, std::uint64_t expected_magic,
               std::uint32_t expected_version);

  const Status& status() const { return status_; }

  std::uint32_t ReadU32() {
    std::uint32_t value = 0;
    ReadRaw(&value, sizeof(value));
    return value;
  }
  std::uint64_t ReadU64() {
    std::uint64_t value = 0;
    ReadRaw(&value, sizeof(value));
    return value;
  }
  double ReadDouble() {
    double value = 0;
    ReadRaw(&value, sizeof(value));
    return value;
  }

  /// Reads a length-prefixed vector; enforces `max_elements` so corrupt
  /// length fields cannot trigger huge allocations.
  template <typename T>
  std::vector<T> ReadVector(std::uint64_t max_elements) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = ReadU64();
    if (count > max_elements) {
      Fail("vector length " + std::to_string(count) + " at byte offset " +
           std::to_string(bytes_read_ - sizeof(std::uint64_t)) +
           " exceeds limit " + std::to_string(max_elements));
      return {};
    }
    std::vector<T> values(count);
    if (count > 0) ReadRaw(values.data(), count * sizeof(T));
    return values;
  }

  /// Bytes successfully consumed so far (including magic + version).
  std::uint64_t bytes_read() const { return bytes_read_; }

  /// OK iff everything read so far was present and well-formed.
  Status Finish() const { return status_; }

  /// Failpoint consulted on every subsequent read (docs/durability.md);
  /// error specs surface as IoError so retry policies treat the
  /// injection as the transient it simulates.
  void set_failpoint(const char* name) { failpoint_ = name; }

 private:
  void ReadRaw(void* data, std::size_t bytes);
  void Fail(const std::string& message);

  std::ifstream in_;
  std::string path_;
  Status status_;
  std::uint64_t bytes_read_ = 0;
  const char* failpoint_ = nullptr;
};

/// fsync(2) of `path`'s contents / of a directory's entry table. The
/// generation swap protocol (docs/durability.md) syncs every blob and
/// the manifest before the CURRENT flip, and the directory after it, so
/// a crash can never publish a pointer to bytes that might not survive
/// the crash. ofstream cannot express this, hence the by-path helpers.
Status SyncFileToDisk(const std::string& path);
Status SyncDirToDisk(const std::string& dir);

}  // namespace influmax

#endif  // INFLUMAX_COMMON_BINARY_IO_H_
