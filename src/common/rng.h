#ifndef INFLUMAX_COMMON_RNG_H_
#define INFLUMAX_COMMON_RNG_H_

#include <cstdint>
#include <limits>

namespace influmax {

/// Fast, reproducible pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Every randomized component of the library takes an explicit
/// seed so that experiments are replayable; std::mt19937 is avoided because
/// its state is heavy for the per-thread streams used by the Monte Carlo
/// engines.
///
/// Satisfies the UniformRandomBitGenerator named requirement, so it can be
/// plugged into <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds deterministically from `seed` (distinct seeds give independent
  /// streams for practical purposes).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { Reseed(seed); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  void Reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state; this is the
    // initialization recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method: unbiased and fast.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli draw with success probability `p`.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Exponential draw with mean `mean` (> 0).
  double NextExponential(double mean);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal draw (Box-Muller, one value per call).
  double NextGaussian();

  /// Draws from a discrete power-law on {1, 2, ...} with exponent `alpha`
  /// (> 1), truncated at `max_value`, via inverse-transform sampling of the
  /// continuous Pareto and rounding down.
  std::uint64_t NextZipf(double alpha, std::uint64_t max_value);

 private:
  static std::uint64_t Rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace influmax

#endif  // INFLUMAX_COMMON_RNG_H_
