#include "common/status.h"

namespace influmax {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace influmax
