#include "common/memory.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace influmax {
namespace {

// Reads a "<Field>:   <value> kB" line from /proc/self/status.
std::uint64_t ReadStatusFieldKb(const char* field) {
  std::ifstream in("/proc/self/status");
  if (!in.is_open()) return 0;
  std::string line;
  const std::size_t field_len = std::strlen(field);
  while (std::getline(in, line)) {
    if (line.compare(0, field_len, field) == 0) {
      std::uint64_t kb = 0;
      std::istringstream iss(line.substr(field_len + 1));
      iss >> kb;
      return kb;
    }
  }
  return 0;
}

}  // namespace

std::uint64_t CurrentRssBytes() { return ReadStatusFieldKb("VmRSS") * 1024; }

std::uint64_t PeakRssBytes() {
  // Some containerized kernels expose VmRSS but not VmHWM; fall back to
  // the current value so callers always get a usable lower bound.
  const std::uint64_t hwm = ReadStatusFieldKb("VmHWM") * 1024;
  return hwm != 0 ? hwm : CurrentRssBytes();
}

std::string FormatBytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1000.0 && unit < 4) {
    value /= 1000.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

}  // namespace influmax
