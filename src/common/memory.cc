#include "common/memory.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/failpoint.h"

namespace influmax {
namespace {

// Reads a "<Field>:   <value> kB" line from /proc/self/status.
std::uint64_t ReadStatusFieldKb(const char* field) {
  std::ifstream in("/proc/self/status");
  if (!in.is_open()) return 0;
  std::string line;
  const std::size_t field_len = std::strlen(field);
  while (std::getline(in, line)) {
    if (line.compare(0, field_len, field) == 0) {
      std::uint64_t kb = 0;
      std::istringstream iss(line.substr(field_len + 1));
      iss >> kb;
      return kb;
    }
  }
  return 0;
}

}  // namespace

std::uint64_t CurrentRssBytes() { return ReadStatusFieldKb("VmRSS") * 1024; }

std::uint64_t PeakRssBytes() {
  // Some containerized kernels expose VmRSS but not VmHWM; fall back to
  // the current value so callers always get a usable lower bound.
  const std::uint64_t hwm = ReadStatusFieldKb("VmHWM") * 1024;
  return hwm != 0 ? hwm : CurrentRssBytes();
}

std::string FormatBytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1000.0 && unit < 4) {
    value /= 1000.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  INFLUMAX_FAILPOINT("mmap.open");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("mmap open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("mmap fstat '" + path +
                           "': " + std::strerror(err));
  }
  MmapFile file;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IoError("mmap '" + path + "': " + std::strerror(err));
    }
    file.data_ = static_cast<const std::byte*>(addr);
  }
  ::close(fd);  // the mapping keeps its own reference to the file
  return file;
}

void MmapFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
}

}  // namespace influmax
