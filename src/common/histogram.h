#ifndef INFLUMAX_COMMON_HISTOGRAM_H_
#define INFLUMAX_COMMON_HISTOGRAM_H_

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

namespace influmax {

/// Log-bucketed latency histogram (HDR-style): values are placed into
/// power-of-two ranges split into 32 linear sub-buckets, giving <= ~3%
/// relative resolution with O(1) Record, a fixed ~16 KiB footprint, and
/// no allocation — the shape `serve_credit --bench` wants for per-query
/// percentiles (p50/p95/p99 per query type) and bench loops in general.
///
/// Values below 32 land in exact unit buckets; values up to 2^63 - 1 are
/// representable. Percentile() returns the midpoint of the bucket holding
/// the requested rank, so the reported percentile is within one bucket
/// width (~3%) of the true order statistic. Deterministic: the digest
/// depends only on the multiset of recorded values, so merging per-thread
/// histograms (Merge) is order-independent.
class LatencyHistogram {
 public:
  /// Records one non-negative sample (nanoseconds by convention; the
  /// class is unit-agnostic). Negative samples clamp to 0.
  void Record(double value) {
    const std::uint64_t v =
        value <= 0.0 ? 0 : static_cast<std::uint64_t>(value);
    ++counts_[BucketOf(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  /// Approximate p-th percentile (p in [0, 100]) of the recorded
  /// samples: the midpoint of the bucket containing the rank-
  /// ceil(p/100 * count) sample. Returns 0 when empty.
  double Percentile(double p) const {
    if (count_ == 0) return 0.0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      seen += counts_[b];
      if (seen >= rank) return BucketMidpoint(b);
    }
    return BucketMidpoint(counts_.size() - 1);
  }

  /// Samples recorded so far.
  std::uint64_t count() const { return count_; }

  /// Sum of the recorded (clamped-to-uint64) samples. Kept as an integer
  /// so Merge stays exactly order-independent — no FP addition order.
  std::uint64_t sum() const { return sum_; }

  /// Largest recorded sample (0 when empty).
  std::uint64_t max() const { return max_; }

  /// Mean of the recorded samples (0 when empty).
  double mean() const {
    if (count_ == 0) return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Adds another histogram's counts into this one (per-thread digests
  /// merge without ordering effects).
  void Merge(const LatencyHistogram& other) {
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      counts_[b] += other.counts_[b];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  /// Drops every sample.
  void Reset() {
    counts_.fill(0);
    count_ = 0;
    sum_ = 0;
    max_ = 0;
  }

  // --- Bucket-iteration API (Prometheus exposition, external digests) ---

  /// Number of buckets; `bucket_count(b)` is valid for b in
  /// [0, num_buckets()).
  static constexpr std::size_t num_buckets() { return kBuckets; }

  /// Samples that landed in bucket b.
  std::uint64_t bucket_count(std::size_t b) const { return counts_[b]; }

  /// The bucket a sample with this value lands in.
  static std::size_t BucketIndexOf(std::uint64_t v) { return BucketOf(v); }

  /// Inclusive upper bound of bucket b: every sample in the bucket is
  /// <= this value (Prometheus `le` semantics). The last bucket's bound
  /// is 2^64 - 1, i.e. effectively +Inf for uint64 samples.
  static double BucketUpperBound(std::size_t b) {
    const std::uint64_t group = b >> kSubBits;
    const std::uint64_t sub = b & (kSub - 1);
    if (group == 0) return static_cast<double>(sub);
    // Bucket [lo, lo + width): lo = (kSub + sub) << (group - 1).
    const std::uint64_t lo = (kSub + sub) << (group - 1);
    const std::uint64_t width = std::uint64_t{1} << (group - 1);
    return static_cast<double>(lo + width - 1);
  }

  /// Folds n pre-bucketed samples into bucket b — the scrape path for
  /// external per-thread digests (src/obs) that keep atomic bucket
  /// arrays rather than LatencyHistogram instances. Does not touch
  /// sum/max; pair with MergeSumMax.
  void AddBucketCount(std::size_t b, std::uint64_t n) {
    counts_[b] += n;
    count_ += n;
  }

  /// Folds an externally tracked (sum, max) pair into this histogram,
  /// with the same order-independence as Merge.
  void MergeSumMax(std::uint64_t sum, std::uint64_t max) {
    sum_ += sum;
    if (max > max_) max_ = max;
  }

 private:
  // 32 linear sub-buckets per power-of-two range.
  static constexpr std::uint32_t kSubBits = 5;
  static constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  // Group 0 holds the exact values [0, kSub); groups g >= 1 hold
  // [kSub << (g - 1), kSub << g), 32 sub-buckets each. 64-bit values
  // need (64 - kSubBits) groups.
  static constexpr std::size_t kGroups = 64 - kSubBits;
  static constexpr std::size_t kBuckets = (kGroups + 1) * kSub;

  static std::size_t BucketOf(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const std::uint32_t group =
        static_cast<std::uint32_t>(std::bit_width(v)) - kSubBits;
    const std::uint64_t sub = (v >> (group - 1)) - kSub;
    return static_cast<std::size_t>(group) * kSub +
           static_cast<std::size_t>(sub);
  }

  static double BucketMidpoint(std::size_t bucket) {
    const std::uint64_t group = bucket >> kSubBits;
    const std::uint64_t sub = bucket & (kSub - 1);
    if (group == 0) return static_cast<double>(sub);
    // Bucket [lo, lo + width): lo = (kSub + sub) << (group - 1).
    const double lo = static_cast<double>((kSub + sub)) *
                      static_cast<double>(std::uint64_t{1} << (group - 1));
    const double width =
        static_cast<double>(std::uint64_t{1} << (group - 1));
    return lo + width / 2.0;
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace influmax

#endif  // INFLUMAX_COMMON_HISTOGRAM_H_
