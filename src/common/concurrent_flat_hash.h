#ifndef INFLUMAX_COMMON_CONCURRENT_FLAT_HASH_H_
#define INFLUMAX_COMMON_CONCURRENT_FLAT_HASH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/flat_hash.h"
#include "common/logging.h"

namespace influmax {

/// Read-mostly concurrent hash map: one writer, many lock-free readers.
///
/// The design is epoch publication (modeled on the epoch reclaimer of
/// concurrent-robin-hood-hashing) rather than fine-grained locking: the
/// serving workloads this exists for — many SnapshotQueryEngine sessions
/// consulting one shared table of precomputed gains — read millions of
/// times between rare batched updates, so readers must pay no lock, no
/// CAS, and no shared-cacheline write on the probe itself.
///
///  * The writer stages mutations into a private FlatHashMap
///    (InsertOrAssign / Erase / Clear) that readers never see.
///  * Publish() freezes the staged state into an immutable linear-probe
///    table (power-of-two capacity, load factor <= 0.5, same fmix64
///    hash as FlatHashMap) and swaps it in with one atomic store.
///  * Readers probe the published table through a ReadSession — a
///    registered per-thread handle. Each read (or Guard scope) pins the
///    current epoch in the session's own cache line, probes, and unpins;
///    the probe itself touches only immutable memory.
///  * A superseded table is retired, not freed: Publish() reclaims a
///    retired table only once every registered session has either
///    quiesced or pinned a later epoch, so a reader can never touch
///    freed memory. A stalled pinned reader delays reclamation but never
///    blocks the writer or other readers.
///
/// Safety argument (all epoch/pointer accesses are seq_cst): a reader
/// pins epoch e (read from the global counter) *before* loading the
/// table pointer. If it loaded table T, then T's retirement — the
/// publish that replaced it — comes after that load in the seq_cst
/// total order, so T's retire epoch is >= e and the reclamation
/// condition `retire_epoch < min(pinned epochs) <= e` fails until the
/// reader unpins. Conversely, if the writer's reclamation scan misses a
/// concurrent pin, the pin's later published-pointer load is ordered
/// after the writer's swap and observes the *new* table.
///
/// Concurrency contract: any number of ReadSessions (each used by one
/// thread at a time); all writer-side calls (staging, Publish,
/// retired_tables) from one thread at a time. Values are copied out
/// under the pin, so V must be trivially copyable. The map must outlive
/// its sessions.
template <typename K, typename V, typename Hash = FlatHash<K>>
class ConcurrentFlatHashMap {
  static_assert(std::is_trivially_copyable_v<K>,
                "ConcurrentFlatHashMap keys must be trivially copyable");
  static_assert(std::is_trivially_copyable_v<V>,
                "ConcurrentFlatHashMap values are copied out under the "
                "epoch pin and must be trivially copyable");

  // Published tables are plain linear probes, not robin hood: they are
  // immutable (no deletes, so no tombstones and no backward shifts) and
  // at load <= 0.5 the probe chains stay short without displacement.
  struct Entry {
    K key;
    V value;
  };

  struct Table {
    std::vector<std::uint8_t> used;
    std::vector<Entry> entries;
    std::size_t mask = 0;
    std::size_t size = 0;
    std::uint64_t version = 0;
    std::uint64_t retire_epoch = 0;  // writer-only, set at retirement

    Table(const FlatHashMap<K, V, Hash>& staged, std::uint64_t v)
        : version(v) {
      std::size_t capacity = 16;
      while (capacity < 2 * staged.size()) capacity *= 2;
      used.assign(capacity, 0);
      entries.resize(capacity);
      mask = capacity - 1;
      size = staged.size();
      const Hash hash;
      for (const auto entry : staged) {
        std::size_t idx = hash(entry.key) & mask;
        while (used[idx]) idx = (idx + 1) & mask;
        used[idx] = 1;
        entries[idx] = {entry.key, entry.value};
      }
    }
  };

  struct alignas(64) SessionSlot {
    std::atomic<std::uint64_t> epoch;
  };

  static constexpr std::uint64_t kFreeSlot = ~0ULL;
  static constexpr std::uint64_t kQuiescent = ~0ULL - 1;

 public:
  /// `max_sessions` bounds concurrently registered ReadSessions (each
  /// occupies one cache-line slot scanned by Publish()).
  explicit ConcurrentFlatHashMap(std::size_t max_sessions = 64)
      : slots_(max_sessions) {
    for (auto& slot : slots_) {
      slot.epoch.store(kFreeSlot, std::memory_order_relaxed);
    }
  }

  ~ConcurrentFlatHashMap() {
    delete published_.load(std::memory_order_relaxed);
    for (const Table* table : retired_) delete table;
  }

  ConcurrentFlatHashMap(const ConcurrentFlatHashMap&) = delete;
  ConcurrentFlatHashMap& operator=(const ConcurrentFlatHashMap&) = delete;

  // ------------------------------------------------------- writer side

  /// Stages an insert/overwrite; invisible to readers until Publish().
  void InsertOrAssign(K key, V value) { staged_.InsertOrAssign(key, value); }

  /// Stages a removal; returns whether the key was staged.
  bool Erase(K key) { return staged_.Erase(key); }

  /// Stages removal of everything.
  void Clear() { staged_.Clear(); }

  /// Entries in the staged (writer-private) state.
  std::size_t staged_size() const { return staged_.size(); }

  /// Atomically replaces the readers' table with the staged state and
  /// reclaims superseded tables no session can still be reading.
  /// Returns the new table's version (1 for the first publish).
  std::uint64_t Publish() {
    Table* next = new Table(staged_, ++version_);
    Table* old = published_.exchange(next);
    if (old != nullptr) {
      old->retire_epoch = global_epoch_.load();
      retired_.push_back(old);
    }
    global_epoch_.fetch_add(1);
    ReclaimRetired();
    return version_;
  }

  /// Version of the latest published table (0 = nothing published).
  std::uint64_t published_version() const { return version_; }

  /// Superseded tables still waiting on a pinned reader (diagnostics;
  /// writer-side like Publish).
  std::size_t retired_tables() const { return retired_.size(); }

  // ------------------------------------------------------- reader side

  class ReadSession;

  /// Pins the epoch for a batch of reads; probes are lock-free against
  /// one consistent table version for the Guard's whole lifetime.
  class Guard {
   public:
    explicit Guard(ReadSession& session) : session_(&session) {
      ConcurrentFlatHashMap& map = *session_->map_;
      session_->slot_->epoch.store(map.global_epoch_.load());
      table_ = map.published_.load();
    }

    ~Guard() { session_->slot_->epoch.store(kQuiescent); }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    /// Copies the value for `key` into `*out`; false when absent (or
    /// nothing was published yet).
    bool Find(K key, V* out) const {
      if (table_ == nullptr || table_->size == 0) return false;
      const Hash hash;
      std::size_t idx = hash(key) & table_->mask;
      while (table_->used[idx]) {
        if (table_->entries[idx].key == key) {
          *out = table_->entries[idx].value;
          return true;
        }
        idx = (idx + 1) & table_->mask;
      }
      return false;
    }

    /// Version of the pinned table (0 = nothing published yet).
    std::uint64_t version() const {
      return table_ == nullptr ? 0 : table_->version;
    }

    /// Entries in the pinned table.
    std::size_t size() const { return table_ == nullptr ? 0 : table_->size; }

   private:
    ReadSession* session_;
    const Table* table_;
  };

  /// Per-thread reader handle. Registration claims one epoch slot;
  /// destruction releases it. One thread at a time per session.
  class ReadSession {
   public:
    explicit ReadSession(ConcurrentFlatHashMap& map) : map_(&map) {
      for (auto& slot : map.slots_) {
        std::uint64_t expected = kFreeSlot;
        if (slot.epoch.compare_exchange_strong(expected, kQuiescent)) {
          slot_ = &slot;
          return;
        }
      }
      INFLUMAX_LOG_FATAL << "ConcurrentFlatHashMap: all "
                         << map.slots_.size()
                         << " reader sessions are in use";
    }

    ~ReadSession() {
      if (slot_ != nullptr) slot_->epoch.store(kFreeSlot);
    }

    ReadSession(const ReadSession&) = delete;
    ReadSession& operator=(const ReadSession&) = delete;

    /// One pinned read: copies the value for `key` into `*out`.
    bool Find(K key, V* out) {
      Guard guard(*this);
      return guard.Find(key, out);
    }

   private:
    friend class Guard;
    ConcurrentFlatHashMap* map_;
    SessionSlot* slot_ = nullptr;
  };

 private:
  void ReclaimRetired() {
    std::uint64_t min_pinned = kQuiescent;
    for (const auto& slot : slots_) {
      const std::uint64_t epoch = slot.epoch.load();
      if (epoch < min_pinned) min_pinned = epoch;
    }
    std::size_t kept = 0;
    for (Table* table : retired_) {
      if (table->retire_epoch < min_pinned) {
        delete table;
      } else {
        retired_[kept++] = table;
      }
    }
    retired_.resize(kept);
  }

  FlatHashMap<K, V, Hash> staged_;           // writer-private
  std::atomic<Table*> published_{nullptr};
  std::atomic<std::uint64_t> global_epoch_{1};
  std::vector<Table*> retired_;              // writer-private
  std::vector<SessionSlot> slots_;
  std::uint64_t version_ = 0;                // writer-private
};

}  // namespace influmax

#endif  // INFLUMAX_COMMON_CONCURRENT_FLAT_HASH_H_
