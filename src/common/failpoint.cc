#include "common/failpoint.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace influmax {
namespace {

struct Entry {
  FailpointSpec spec;
  std::uint64_t evals = 0;     // evaluations since armed
  std::uint64_t trips = 0;     // times the effect actually fired
  std::int64_t remaining = -1; // fires left; -1 = unlimited
};

std::mutex g_mu;

// One registry for the process; `less<>` enables string_view lookups.
std::map<std::string, Entry, std::less<>>& Entries() {
  static std::map<std::string, Entry, std::less<>> entries;
  return entries;
}

std::vector<std::string>& Trace() {
  static std::vector<std::string> trace;
  return trace;
}

bool g_tracing = false;

// Fast-path gate: armed entry count + (tracing ? 1 : 0). Sites bail on
// a single relaxed load when nothing is armed and nothing traces, so
// even failpoint-enabled builds only pay the slow path during a drill.
std::atomic<std::uint32_t> g_active{0};

std::atomic<FailpointCrashHandler> g_crash_handler{nullptr};

std::uint32_t ActiveCountLocked() {
  std::uint32_t armed = 0;
  for (const auto& [name, entry] : Entries()) {
    if (entry.spec.mode != FailpointMode::kOff && entry.remaining != 0) {
      ++armed;
    }
  }
  return armed + (g_tracing ? 1 : 0);
}

bool ParseU64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

#ifdef INFLUMAX_FAILPOINTS
// Env arming happens once per process, before main in enabled builds,
// so INFLUMAX_FAILPOINTS_ARM reaches sites hit during static init too.
const bool g_env_armed = [] {
  const Status status = ArmFailpointsFromEnv();
  if (!status.ok()) {
    INFLUMAX_LOG_WARN << "INFLUMAX_FAILPOINTS_ARM: " << status;
  }
  return true;
}();
#endif

}  // namespace

bool FailpointsCompiledIn() { return kFailpointsEnabled; }

Status ArmFailpoint(std::string_view name, const FailpointSpec& spec) {
  if (!kFailpointsEnabled) {
    return Status::FailedPrecondition(
        "failpoints are compiled out (build with -DINFLUMAX_FAILPOINTS=ON)");
  }
  if (name.empty()) {
    return Status::InvalidArgument("failpoint name is empty");
  }
  if (spec.mode == FailpointMode::kOff) {
    return Status::InvalidArgument("arming 'off' makes no sense; disarm '" +
                                   std::string(name) + "' instead");
  }
  std::lock_guard<std::mutex> lock(g_mu);
  Entry& entry = Entries()[std::string(name)];
  entry.spec = spec;
  entry.evals = 0;
  entry.remaining = spec.limit;
  g_active.store(ActiveCountLocked(), std::memory_order_relaxed);
  return Status::OK();
}

void DisarmFailpoint(std::string_view name) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = Entries().find(name);
  if (it != Entries().end()) {
    it->second.spec.mode = FailpointMode::kOff;
    it->second.remaining = 0;
  }
  g_active.store(ActiveCountLocked(), std::memory_order_relaxed);
}

void DisarmAllFailpoints() {
  std::lock_guard<std::mutex> lock(g_mu);
  for (auto& [name, entry] : Entries()) {
    entry.spec.mode = FailpointMode::kOff;
    entry.remaining = 0;
  }
  g_active.store(ActiveCountLocked(), std::memory_order_relaxed);
}

std::uint64_t FailpointTripCount(std::string_view name) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = Entries().find(name);
  return it == Entries().end() ? 0 : it->second.trips;
}

std::vector<std::string> FailpointCatalog() {
  std::lock_guard<std::mutex> lock(g_mu);
  std::vector<std::string> names;
  names.reserve(Entries().size());
  for (const auto& [name, entry] : Entries()) names.push_back(name);
  return names;
}

Result<FailpointSpec> ParseFailpointSpec(std::string_view text) {
  FailpointSpec spec;
  // Strip "#<limit>" then "@<skip>" suffixes (either order of
  // appearance, but # binds last so "error@2#1" parses naturally).
  const auto take_suffix = [&](char marker, std::uint64_t* out) -> Status {
    const std::size_t pos = text.rfind(marker);
    if (pos == std::string_view::npos) return Status::OK();
    if (!ParseU64(text.substr(pos + 1), out)) {
      return Status::InvalidArgument("bad failpoint spec suffix '" +
                                     std::string(text.substr(pos)) + "'");
    }
    text = text.substr(0, pos);
    return Status::OK();
  };
  std::uint64_t limit = 0;
  const std::size_t limit_pos = text.rfind('#');
  const bool has_limit = limit_pos != std::string_view::npos;
  INFLUMAX_RETURN_IF_ERROR(take_suffix('#', &limit));
  if (has_limit) spec.limit = static_cast<std::int64_t>(limit);
  INFLUMAX_RETURN_IF_ERROR(take_suffix('@', &spec.skip));

  std::string_view mode = text;
  std::string_view arg;
  if (const std::size_t colon = text.find(':');
      colon != std::string_view::npos) {
    mode = text.substr(0, colon);
    arg = text.substr(colon + 1);
  }
  const bool wants_arg = !arg.empty();
  if (wants_arg && !ParseU64(arg, &spec.arg)) {
    return Status::InvalidArgument("bad failpoint argument '" +
                                   std::string(arg) + "'");
  }
  if (mode == "off") {
    spec.mode = FailpointMode::kOff;
  } else if (mode == "error") {
    spec.mode = FailpointMode::kError;
  } else if (mode == "crash") {
    spec.mode = FailpointMode::kCrash;
  } else if (mode == "torn") {
    spec.mode = FailpointMode::kTorn;
  } else if (mode == "torncrash") {
    spec.mode = FailpointMode::kTornCrash;
  } else if (mode == "delay") {
    spec.mode = FailpointMode::kDelay;
  } else {
    return Status::InvalidArgument(
        "unknown failpoint mode '" + std::string(mode) +
        "' (expected off|error|crash|torn|torncrash|delay)");
  }
  return spec;
}

Status ArmFailpointsFromSpec(std::string_view list) {
  std::size_t begin = 0;
  while (begin <= list.size()) {
    std::size_t end = list.find_first_of(";,", begin);
    if (end == std::string_view::npos) end = list.size();
    const std::string_view item = list.substr(begin, end - begin);
    begin = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("failpoint item '" + std::string(item) +
                                     "' is not name=spec");
    }
    auto spec = ParseFailpointSpec(item.substr(eq + 1));
    INFLUMAX_RETURN_IF_ERROR(spec.status());
    if (spec->mode == FailpointMode::kOff) {
      DisarmFailpoint(item.substr(0, eq));
      continue;
    }
    INFLUMAX_RETURN_IF_ERROR(ArmFailpoint(item.substr(0, eq), *spec));
  }
  return Status::OK();
}

Status ArmFailpointsFromEnv() {
  const char* env = std::getenv("INFLUMAX_FAILPOINTS_ARM");
  if (env == nullptr || env[0] == '\0') return Status::OK();
  return ArmFailpointsFromSpec(env);
}

void SetFailpointCrashHandler(FailpointCrashHandler handler) {
  g_crash_handler.store(handler, std::memory_order_release);
}

void EnableFailpointTrace(bool enabled) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_tracing = enabled;
  if (!enabled) Trace().clear();
  g_active.store(ActiveCountLocked(), std::memory_order_relaxed);
}

std::vector<std::string> TakeFailpointTrace() {
  std::lock_guard<std::mutex> lock(g_mu);
  std::vector<std::string> out;
  out.swap(Trace());
  return out;
}

namespace failpoint_internal {

std::optional<FailpointHit> CheckSite(const char* name) {
  if (g_active.load(std::memory_order_relaxed) == 0) return std::nullopt;
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_tracing) Trace().emplace_back(name);
  auto it = Entries().find(std::string_view(name));
  if (it == Entries().end()) return std::nullopt;
  Entry& entry = it->second;
  if (entry.spec.mode == FailpointMode::kOff || entry.remaining == 0) {
    return std::nullopt;
  }
  ++entry.evals;
  if (entry.evals <= entry.spec.skip) return std::nullopt;
  const FailpointHit hit{entry.spec.mode, entry.spec.arg};
  if (hit.mode == FailpointMode::kTorn ||
      hit.mode == FailpointMode::kTornCrash) {
    // The site decides whether this write crosses the cut offset; the
    // fire budget is consumed in RecordTornTrip on the actual tear.
    return hit;
  }
  ++entry.trips;
  if (entry.remaining > 0) --entry.remaining;
  g_active.store(ActiveCountLocked(), std::memory_order_relaxed);
  return hit;
}

Status HitEffect(const char* name, const FailpointHit& hit) {
  switch (hit.mode) {
    case FailpointMode::kOff:
      return Status::OK();
    case FailpointMode::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(hit.arg));
      return Status::OK();
    case FailpointMode::kCrash:
      Crash(name);  // does not return
    case FailpointMode::kError:  // fallthrough unreachable from kCrash

    case FailpointMode::kTorn:
    case FailpointMode::kTornCrash:
      // Torn modes at a site with no byte stream to cut (a reader, an
      // fsync marker) degrade to a plain injected error.
      return Status::IoError(std::string("injected failpoint '") + name +
                             "'");
  }
  return Status::OK();
}

void Crash(const char* name) {
  if (FailpointCrashHandler handler =
          g_crash_handler.load(std::memory_order_acquire);
      handler != nullptr) {
    handler(name);
  }
  INFLUMAX_LOG_FATAL << "failpoint '" << name
                     << "' crash (no handler installed)";
  std::abort();  // not reached; LOG_FATAL aborts
}

void RecordTornTrip(const char* name) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = Entries().find(std::string_view(name));
  if (it == Entries().end()) return;
  ++it->second.trips;
  if (it->second.remaining > 0) --it->second.remaining;
  g_active.store(ActiveCountLocked(), std::memory_order_relaxed);
}

}  // namespace failpoint_internal
}  // namespace influmax
