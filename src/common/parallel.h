#ifndef INFLUMAX_COMMON_PARALLEL_H_
#define INFLUMAX_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace influmax {

/// Returns the degree of parallelism to use when the caller passes 0
/// ("auto"): hardware concurrency, at least 1.
std::size_t EffectiveThreadCount(std::size_t requested);

/// Runs `body(thread_index, begin, end)` over a static partition of
/// [0, total) across `num_threads` workers (0 = auto). Blocks until all
/// workers finish.
///
/// Inline guarantee: when the resolved worker count is 1 — because
/// num_threads == 1, total <= 1, or EffectiveThreadCount(0) resolves to 1
/// — no thread is spawned and the body runs on the calling thread, which
/// the tests use for determinism. With more workers the calling thread
/// participates as worker 0, so N workers spawn only N - 1 threads.
///
/// The Monte Carlo engines use the thread_index to pick an independent
/// RNG stream, so results are reproducible for a fixed thread count.
void ParallelForChunked(
    std::size_t total, std::size_t num_threads,
    const std::function<void(std::size_t thread_index, std::size_t begin,
                             std::size_t end)>& body);

/// Dynamic work-stealing variant: workers repeatedly grab the next index
/// from a shared counter and run `body(thread_index, index)`. Better for
/// heavily skewed per-item costs (e.g. per-action scans). Same inline
/// guarantee and caller participation as ParallelForChunked; with one
/// resolved worker the indices run inline in ascending order.
void ParallelForDynamic(
    std::size_t total, std::size_t num_threads,
    const std::function<void(std::size_t thread_index, std::size_t index)>&
        body);

/// Level-synchronous (wavefront) variant: `level_begin` partitions the
/// index space [0, level_begin.back()) into the contiguous levels
/// [level_begin[L], level_begin[L + 1]); every index of level L completes
/// before any index of level L + 1 starts. Within a level, indices are
/// claimed dynamically (shared counter); across levels, one std::barrier
/// separates the waves, so workers are spawned once for the whole loop,
/// not once per level — the property that makes thousands of shallow
/// levels affordable. The barrier gives each level's writes a
/// happens-before edge into every later level's reads. Same inline
/// guarantee and caller participation as the loops above; with one
/// resolved worker the indices run inline in ascending order (which
/// visits the levels in order, since `level_begin` is ascending).
void ParallelForLevels(
    std::span<const std::size_t> level_begin, std::size_t num_threads,
    const std::function<void(std::size_t thread_index, std::size_t index)>&
        body);

/// Persistent worker pool: the loops above spawn their workers per call,
/// which is fine for scans that run for milliseconds but not for a
/// serving fan-out that runs per query. A WorkerPool spawns its threads
/// once and parks them on a condition variable between jobs, so
/// steady-state ParallelFor calls spawn zero threads (the ROADMAP's
/// "persistent worker pool" open item; the ShardRouter's per-query shard
/// fan-out is the first user — docs/sharding.md).
///
/// ParallelFor has ParallelForDynamic's semantics: workers repeatedly
/// claim the next index from a shared counter and run
/// `body(thread_index, index)`; the calling thread participates as
/// worker 0, spawned threads are workers 1..num_workers()-1. Same inline
/// guarantee: with no spawned threads (pool built on a 1-thread request
/// or 1-core machine) or total <= 1, the body runs inline on the caller
/// in ascending index order.
///
/// Concurrency contract: one ParallelFor at a time (it blocks until the
/// job drains, so distinct callers must externally serialize — in the
/// serving layer each session owns its pool use for the duration of a
/// query). Not reentrant: calling ParallelFor from inside a body
/// deadlocks.
class WorkerPool {
 public:
  /// Spawns EffectiveThreadCount(num_threads) - 1 persistent threads
  /// (0 = all hardware threads).
  explicit WorkerPool(std::size_t num_threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total workers a job runs on: spawned threads + the caller.
  std::size_t num_workers() const { return threads_.size() + 1; }

  /// Runs `body(thread_index, index)` over [0, total) with dynamic
  /// claiming. Blocks until every index has completed.
  void ParallelFor(
      std::size_t total,
      const std::function<void(std::size_t thread_index, std::size_t index)>&
          body);

 private:
  /// One dispatched job. Completion is counted per finished *index*
  /// (not per woken worker), so ParallelFor returns as soon as the last
  /// index's body returns — a parked worker that loses the race for a
  /// small job never adds its scheduler wakeup to the caller's latency.
  /// Shared-ptr owned: a late worker still holds the job alive, finds
  /// the cursor exhausted (completed == total implies cursor >= total),
  /// and never dereferences the caller's `body` after it returned.
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t total = 0;
    // MonotonicNowNs at publication; workers subtract it on wakeup to
    // record pool.queue_wait (src/obs/). Written before the job is
    // published under mu_, read after workers acquire mu_.
    std::uint64_t publish_ns = 0;
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> completed{0};
  };

  void WorkerLoop(std::size_t worker_index);
  void Drain(Job& job, std::size_t worker_index);
  void DrainLoop(Job& job, std::size_t worker_index);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable job_cv_;   // workers wait here between jobs
  std::condition_variable done_cv_;  // the caller waits here per job
  // Guarded by mu_: bumping job_seq_ publishes job_ to workers.
  std::uint64_t job_seq_ = 0;
  std::shared_ptr<Job> job_;
  bool stop_ = false;
};

}  // namespace influmax

#endif  // INFLUMAX_COMMON_PARALLEL_H_
