#ifndef INFLUMAX_COMMON_PARALLEL_H_
#define INFLUMAX_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <span>
#include <thread>
#include <vector>

namespace influmax {

/// Returns the degree of parallelism to use when the caller passes 0
/// ("auto"): hardware concurrency, at least 1.
std::size_t EffectiveThreadCount(std::size_t requested);

/// Runs `body(thread_index, begin, end)` over a static partition of
/// [0, total) across `num_threads` workers (0 = auto). Blocks until all
/// workers finish.
///
/// Inline guarantee: when the resolved worker count is 1 — because
/// num_threads == 1, total <= 1, or EffectiveThreadCount(0) resolves to 1
/// — no thread is spawned and the body runs on the calling thread, which
/// the tests use for determinism. With more workers the calling thread
/// participates as worker 0, so N workers spawn only N - 1 threads.
///
/// The Monte Carlo engines use the thread_index to pick an independent
/// RNG stream, so results are reproducible for a fixed thread count.
void ParallelForChunked(
    std::size_t total, std::size_t num_threads,
    const std::function<void(std::size_t thread_index, std::size_t begin,
                             std::size_t end)>& body);

/// Dynamic work-stealing variant: workers repeatedly grab the next index
/// from a shared counter and run `body(thread_index, index)`. Better for
/// heavily skewed per-item costs (e.g. per-action scans). Same inline
/// guarantee and caller participation as ParallelForChunked; with one
/// resolved worker the indices run inline in ascending order.
void ParallelForDynamic(
    std::size_t total, std::size_t num_threads,
    const std::function<void(std::size_t thread_index, std::size_t index)>&
        body);

/// Level-synchronous (wavefront) variant: `level_begin` partitions the
/// index space [0, level_begin.back()) into the contiguous levels
/// [level_begin[L], level_begin[L + 1]); every index of level L completes
/// before any index of level L + 1 starts. Within a level, indices are
/// claimed dynamically (shared counter); across levels, one std::barrier
/// separates the waves, so workers are spawned once for the whole loop,
/// not once per level — the property that makes thousands of shallow
/// levels affordable. The barrier gives each level's writes a
/// happens-before edge into every later level's reads. Same inline
/// guarantee and caller participation as the loops above; with one
/// resolved worker the indices run inline in ascending order (which
/// visits the levels in order, since `level_begin` is ascending).
void ParallelForLevels(
    std::span<const std::size_t> level_begin, std::size_t num_threads,
    const std::function<void(std::size_t thread_index, std::size_t index)>&
        body);

}  // namespace influmax

#endif  // INFLUMAX_COMMON_PARALLEL_H_
