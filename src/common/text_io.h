#ifndef INFLUMAX_COMMON_TEXT_IO_H_
#define INFLUMAX_COMMON_TEXT_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace influmax {

/// Splits `line` on `delim`, trimming nothing. Empty fields are kept.
std::vector<std::string_view> SplitFields(std::string_view line, char delim);

/// Parses an unsigned 32-bit integer; returns InvalidArgument on garbage.
Result<std::uint32_t> ParseU32(std::string_view token);

/// Parses a double; returns InvalidArgument on garbage.
Result<double> ParseDouble(std::string_view token);

/// Streaming line reader over a whitespace/TSV-style text file. Skips
/// blank lines and lines starting with '#'. Keeps the file handle open for
/// the lifetime of the object.
class LineReader {
 public:
  /// Opens `path`; check `status()` before use.
  explicit LineReader(const std::string& path);
  ~LineReader();

  LineReader(const LineReader&) = delete;
  LineReader& operator=(const LineReader&) = delete;

  /// OK iff the file opened successfully.
  const Status& status() const { return status_; }

  /// Reads the next payload line into `*line`; returns false at EOF.
  bool Next(std::string* line);

  /// 1-based number of the last line returned (for error messages).
  std::size_t line_number() const { return line_number_; }

 private:
  struct Impl;
  Impl* impl_;
  Status status_;
  std::size_t line_number_ = 0;
};

/// Writes `content` to `path` atomically enough for our purposes
/// (truncate + write + flush); returns IoError on failure.
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace influmax

#endif  // INFLUMAX_COMMON_TEXT_IO_H_
