#ifndef INFLUMAX_COMMON_BENCH_JSON_H_
#define INFLUMAX_COMMON_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace influmax {

/// One machine-readable benchmark result. `bench_micro --json` and
/// `serve_credit --bench --json` both emit this exact shape —
/// {name: {ns_per_op, bytes, threads}} — and CI archives it
/// (BENCH_micro.json) so the perf trajectory is diffable across PRs;
/// keep the two binaries on this one writer.
struct BenchJsonRecord {
  std::string name;
  double ns_per_op = 0.0;
  std::uint64_t bytes = 0;
  std::size_t threads = 1;
  /// Optional latency percentiles (ns), emitted when has_percentiles is
  /// set — serve_credit --bench fills them from a LatencyHistogram per
  /// query type. tools/bench_compare.py ignores unknown keys, so records
  /// with and without percentiles mix freely.
  bool has_percentiles = false;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  /// Optional gain-kernel label ("exact" | "fast", src/serve/gain_kernel.h),
  /// emitted when non-empty so the archived perf trajectory distinguishes
  /// exact from fast_math numbers. tools/bench_compare.py ignores it.
  std::string mode;
  /// Optional plain value (counters and gauges from the metrics registry
  /// land here via AppendMetricsJsonRecords), emitted when has_value is
  /// set. tools/bench_compare.py ignores it.
  bool has_value = false;
  double value = 0.0;
  /// Optional sample count and max (ns), emitted when has_count is set —
  /// registry timers carry them next to their percentiles.
  bool has_count = false;
  std::uint64_t count = 0;
  double max_ns = 0.0;
};

/// Writes `records` as the JSON object above. Returns 0, or 1 (with a
/// stderr message) when the file cannot be opened.
inline int WriteBenchJson(const std::string& path,
                          const std::vector<BenchJsonRecord>& records) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(out, "  \"%s\": {\"ns_per_op\": %.3f, \"bytes\": %llu, "
                      "\"threads\": %zu",
                 records[i].name.c_str(), records[i].ns_per_op,
                 static_cast<unsigned long long>(records[i].bytes),
                 records[i].threads);
    if (records[i].has_percentiles) {
      std::fprintf(out,
                   ", \"p50_ns\": %.3f, \"p95_ns\": %.3f, \"p99_ns\": %.3f",
                   records[i].p50_ns, records[i].p95_ns, records[i].p99_ns);
    }
    if (!records[i].mode.empty()) {
      std::fprintf(out, ", \"mode\": \"%s\"", records[i].mode.c_str());
    }
    if (records[i].has_value) {
      std::fprintf(out, ", \"value\": %.3f", records[i].value);
    }
    if (records[i].has_count) {
      std::fprintf(out, ", \"count\": %llu, \"max_ns\": %.3f",
                   static_cast<unsigned long long>(records[i].count),
                   records[i].max_ns);
    }
    std::fprintf(out, "}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  return 0;
}

}  // namespace influmax

#endif  // INFLUMAX_COMMON_BENCH_JSON_H_
