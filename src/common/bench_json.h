#ifndef INFLUMAX_COMMON_BENCH_JSON_H_
#define INFLUMAX_COMMON_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace influmax {

/// One machine-readable benchmark result. `bench_micro --json` and
/// `serve_credit --bench --json` both emit this exact shape —
/// {name: {ns_per_op, bytes, threads}} — and CI archives it
/// (BENCH_micro.json) so the perf trajectory is diffable across PRs;
/// keep the two binaries on this one writer.
struct BenchJsonRecord {
  std::string name;
  double ns_per_op = 0.0;
  std::uint64_t bytes = 0;
  std::size_t threads = 1;
};

/// Writes `records` as the JSON object above. Returns 0, or 1 (with a
/// stderr message) when the file cannot be opened.
inline int WriteBenchJson(const std::string& path,
                          const std::vector<BenchJsonRecord>& records) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(out, "  \"%s\": {\"ns_per_op\": %.3f, \"bytes\": %llu, "
                      "\"threads\": %zu}%s\n",
                 records[i].name.c_str(), records[i].ns_per_op,
                 static_cast<unsigned long long>(records[i].bytes),
                 records[i].threads, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  return 0;
}

}  // namespace influmax

#endif  // INFLUMAX_COMMON_BENCH_JSON_H_
