#include "common/binary_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace influmax {

BinaryWriter::BinaryWriter(const std::string& path, std::uint64_t magic,
                           std::uint32_t version) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) {
    status_ = Status::IoError("cannot open '" + path + "' for writing");
    return;
  }
  WriteU64(magic);
  WriteU32(version);
}

void BinaryWriter::WriteRaw(const void* data, std::size_t bytes) {
  if (!status_.ok()) return;
  if (bytes == 0) return;
  if (data == nullptr) {
    // A null source with a nonzero length is a caller bug (e.g. a section
    // span pointing into a moved-from buffer); fail the stream instead of
    // invoking UB in ostream::write.
    status_ = Status::Internal("BinaryWriter::WriteRaw: null data with " +
                               std::to_string(bytes) +
                               " bytes at byte offset " +
                               std::to_string(bytes_written_));
    return;
  }
#ifdef INFLUMAX_FAILPOINTS
  if (failpoint_ != nullptr) {
    if (auto hit = failpoint_internal::CheckSite(failpoint_)) {
      if (hit->mode == FailpointMode::kTorn ||
          hit->mode == FailpointMode::kTornCrash) {
        // Tear only the write that crosses the cut offset; earlier
        // writes pass so the file is cut at exactly `arg` bytes.
        if (bytes_written_ + bytes > hit->arg) {
          const std::uint64_t keep =
              hit->arg > bytes_written_ ? hit->arg - bytes_written_ : 0;
          out_.write(static_cast<const char*>(data),
                     static_cast<std::streamsize>(keep));
          out_.flush();
          bytes_written_ += keep;
          failpoint_internal::RecordTornTrip(failpoint_);
          if (hit->mode == FailpointMode::kTornCrash) {
            failpoint_internal::Crash(failpoint_);
          }
          status_ = Status::IoError(
              std::string("injected failpoint '") + failpoint_ +
              "': torn write at byte offset " + std::to_string(bytes_written_));
          return;
        }
      } else if (Status st = failpoint_internal::HitEffect(failpoint_, *hit);
                 !st.ok()) {
        status_ = st;
        return;
      }
    }
  }
#endif
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  if (!out_.good()) {
    status_ = Status::IoError("short write of " + std::to_string(bytes) +
                              " bytes at byte offset " +
                              std::to_string(bytes_written_));
    return;
  }
  bytes_written_ += bytes;
}

void BinaryWriter::PadToAlignment(std::uint32_t alignment) {
  static constexpr char kZeros[8] = {0};
  if (alignment == 0 || alignment > sizeof(kZeros)) {
    if (status_.ok()) {
      status_ = Status::Internal("PadToAlignment: unsupported alignment " +
                                 std::to_string(alignment));
    }
    return;
  }
  const std::uint64_t rem = bytes_written_ % alignment;
  if (rem != 0) WriteRaw(kZeros, alignment - rem);
}

Status BinaryWriter::Finish() {
  if (status_.ok()) {
    out_.flush();
    if (!out_.good()) status_ = Status::IoError("flush failed");
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path,
                           std::uint64_t expected_magic,
                           std::uint32_t expected_version)
    : path_(path) {
  in_.open(path, std::ios::binary);
  if (!in_.is_open()) {
    status_ = Status::IoError("cannot open '" + path + "'");
    return;
  }
  const std::uint64_t magic = ReadU64();
  if (status_.ok() && magic != expected_magic) {
    status_ = Status::Corruption("bad magic in '" + path + "'");
    return;
  }
  const std::uint32_t version = ReadU32();
  if (status_.ok() && version != expected_version) {
    status_ = Status::Corruption("unsupported version " +
                                 std::to_string(version) + " in '" + path +
                                 "'");
  }
}

void BinaryReader::ReadRaw(void* data, std::size_t bytes) {
  if (!status_.ok()) return;
#ifdef INFLUMAX_FAILPOINTS
  if (failpoint_ != nullptr) {
    if (auto hit = failpoint_internal::CheckSite(failpoint_)) {
      if (Status st = failpoint_internal::HitEffect(failpoint_, *hit);
          !st.ok()) {
        status_ = st;
        return;
      }
    }
  }
#endif
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  const std::streamsize got = in_.gcount();
  if (got != static_cast<std::streamsize>(bytes)) {
    status_ = Status::Corruption(
        "truncated binary file '" + path_ + "': short read at byte offset " +
        std::to_string(bytes_read_) + " (wanted " + std::to_string(bytes) +
        " bytes, got " + std::to_string(got) + ")");
    return;
  }
  bytes_read_ += bytes;
}

void BinaryReader::Fail(const std::string& message) {
  if (status_.ok()) status_ = Status::Corruption(message);
}

namespace {

Status SyncFd(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("fsync open '" + path +
                           "': " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("fsync '" + path + "': " + std::strerror(err));
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

Status SyncFileToDisk(const std::string& path) {
  return SyncFd(path, O_RDONLY);
}

Status SyncDirToDisk(const std::string& dir) {
  return SyncFd(dir, O_RDONLY | O_DIRECTORY);
}

}  // namespace influmax
