#include "common/binary_io.h"

namespace influmax {

BinaryWriter::BinaryWriter(const std::string& path, std::uint64_t magic,
                           std::uint32_t version) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) {
    status_ = Status::IoError("cannot open '" + path + "' for writing");
    return;
  }
  WriteU64(magic);
  WriteU32(version);
}

void BinaryWriter::WriteRaw(const void* data, std::size_t bytes) {
  if (!status_.ok()) return;
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  if (!out_.good()) status_ = Status::IoError("short binary write");
}

Status BinaryWriter::Finish() {
  if (status_.ok()) {
    out_.flush();
    if (!out_.good()) status_ = Status::IoError("flush failed");
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path,
                           std::uint64_t expected_magic,
                           std::uint32_t expected_version) {
  in_.open(path, std::ios::binary);
  if (!in_.is_open()) {
    status_ = Status::IoError("cannot open '" + path + "'");
    return;
  }
  const std::uint64_t magic = ReadU64();
  if (status_.ok() && magic != expected_magic) {
    status_ = Status::Corruption("bad magic in '" + path + "'");
    return;
  }
  const std::uint32_t version = ReadU32();
  if (status_.ok() && version != expected_version) {
    status_ = Status::Corruption("unsupported version " +
                                 std::to_string(version) + " in '" + path +
                                 "'");
  }
}

void BinaryReader::ReadRaw(void* data, std::size_t bytes) {
  if (!status_.ok()) return;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (in_.gcount() != static_cast<std::streamsize>(bytes)) {
    status_ = Status::Corruption("truncated binary file");
  }
}

void BinaryReader::Fail(const std::string& message) {
  if (status_.ok()) status_ = Status::Corruption(message);
}

}  // namespace influmax
