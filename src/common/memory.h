#ifndef INFLUMAX_COMMON_MEMORY_H_
#define INFLUMAX_COMMON_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"

namespace influmax {

/// Returns the current resident set size of this process in bytes, read
/// from /proc/self/status (VmRSS), or 0 if unavailable. Used by the
/// scalability experiment (Figure 8) and the truncation-threshold study
/// (Table 4) to report memory usage.
std::uint64_t CurrentRssBytes();

/// Returns the peak resident set size (VmHWM) in bytes, or 0 if
/// unavailable.
std::uint64_t PeakRssBytes();

/// Renders `bytes` as e.g. "512 B", "14.2 MB", "1.53 GB" (base-10 units,
/// matching the paper's GB figures).
std::string FormatBytes(std::uint64_t bytes);

/// Read-only memory-mapped file (RAII). The serving layer maps credit
/// snapshots with it so flat arrays can be read zero-copy straight from
/// the page cache; no read() buffering, no per-load allocation.
///
/// Move-only: the mapping is unmapped exactly once, by the last owner.
/// An empty file maps to {data() == nullptr, size() == 0} and is valid.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { Reset(); }

  MmapFile(MmapFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only in full. IoError when the file cannot be
  /// opened, stat'ed, or mapped.
  static Result<MmapFile> Open(const std::string& path);

  /// First mapped byte (page-aligned, so any 8-byte-aligned file offset
  /// is safely readable as a u64/double), or nullptr for an empty file.
  const std::byte* data() const { return data_; }

  /// Mapped length in bytes (== file size at Open time).
  std::size_t size() const { return size_; }

 private:
  void Reset();

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace influmax

#endif  // INFLUMAX_COMMON_MEMORY_H_
