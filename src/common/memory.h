#ifndef INFLUMAX_COMMON_MEMORY_H_
#define INFLUMAX_COMMON_MEMORY_H_

#include <cstdint>
#include <string>

namespace influmax {

/// Returns the current resident set size of this process in bytes, read
/// from /proc/self/status (VmRSS), or 0 if unavailable. Used by the
/// scalability experiment (Figure 8) and the truncation-threshold study
/// (Table 4) to report memory usage.
std::uint64_t CurrentRssBytes();

/// Returns the peak resident set size (VmHWM) in bytes, or 0 if
/// unavailable.
std::uint64_t PeakRssBytes();

/// Renders `bytes` as e.g. "512 B", "14.2 MB", "1.53 GB" (base-10 units,
/// matching the paper's GB figures).
std::string FormatBytes(std::uint64_t bytes);

}  // namespace influmax

#endif  // INFLUMAX_COMMON_MEMORY_H_
