#include "common/text_io.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace influmax {

std::vector<std::string_view> SplitFields(std::string_view line, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == delim) {
      out.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

Result<std::uint32_t> ParseU32(std::string_view token) {
  if (token.empty()) return Status::InvalidArgument("empty integer token");
  std::uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad integer token '" +
                                     std::string(token) + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > 0xFFFFFFFFULL) {
      return Status::InvalidArgument("integer token out of range '" +
                                     std::string(token) + "'");
    }
  }
  return static_cast<std::uint32_t>(value);
}

Result<double> ParseDouble(std::string_view token) {
  if (token.empty()) return Status::InvalidArgument("empty double token");
  std::string buf(token);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::InvalidArgument("bad double token '" + buf + "'");
  }
  return value;
}

struct LineReader::Impl {
  std::ifstream in;
};

LineReader::LineReader(const std::string& path) : impl_(new Impl) {
  impl_->in.open(path);
  if (!impl_->in.is_open()) {
    status_ = Status::IoError("cannot open '" + path + "'");
  }
}

LineReader::~LineReader() { delete impl_; }

bool LineReader::Next(std::string* line) {
  if (!status_.ok()) return false;
  while (std::getline(impl_->in, *line)) {
    ++line_number_;
    if (line->empty() || (*line)[0] == '#') continue;
    // Tolerate CRLF input.
    if (line->back() == '\r') line->pop_back();
    if (line->empty()) continue;
    return true;
  }
  return false;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << content;
  out.flush();
  if (!out.good()) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace influmax
