#ifndef INFLUMAX_COMMON_RETRY_H_
#define INFLUMAX_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace influmax {

/// True for the class of failures a backoff (or a replica failover) can
/// heal: kIoError (a file mid-rename, NFS hiccup, transient EIO) and
/// kUnavailable (refused/reset/timed-out connections, a replica at
/// capacity — src/net's errno mapping). Corruption, NotFound, and
/// argument errors are deterministic and never retried.
bool IsTransientError(const Status& status);

/// Historical name for the disk-only half; now the same widened
/// classifier (the network class arrived with src/net).
inline bool IsTransientIoError(const Status& status) {
  return IsTransientError(status);
}

/// Bounded exponential backoff shared by the generation watcher and
/// RefreshFromDisk (docs/durability.md). Deterministic given
/// jitter_seed: the jitter stream comes from common/rng's xoshiro256**,
/// so chaos tests replay the exact same schedule.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;
  std::uint64_t initial_backoff_ms = 10;
  std::uint64_t max_backoff_ms = 500;
  double multiplier = 2.0;
  /// Cap on cumulative backoff sleep; attempts stop early once the next
  /// delay would exceed it.
  std::uint64_t budget_ms = 2000;
  std::uint64_t jitter_seed = 0x72657472795F6A74ULL;
  bool (*retryable)(const Status&) = &IsTransientError;
};

/// Runs `attempt` until it succeeds, returns a non-retryable status,
/// exhausts max_attempts, exhausts the sleep budget, or the next backoff
/// would overshoot `deadline`; returns the last status. The deadline
/// check is in addition to budget_ms: the budget caps this loop's own
/// cumulative sleep, the deadline is the caller's absolute bound (a
/// watcher tick, an RPC deadline) that keeps a retry schedule from
/// outliving the operation it serves. Every call of `attempt` bumps
/// `attempts_counter` (the registry's retry.attempts; nullptr skips).
/// `sleep_ms` overrides the delay primitive — the watcher passes an
/// interruptible wait, tests pass a recorder.
Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& attempt,
                    Counter* attempts_counter = nullptr,
                    const std::function<void(std::uint64_t)>& sleep_ms = {},
                    const Deadline& deadline = Deadline::Infinite());

}  // namespace influmax

#endif  // INFLUMAX_COMMON_RETRY_H_
