#ifndef INFLUMAX_COMMON_RETRY_H_
#define INFLUMAX_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "obs/metrics.h"

namespace influmax {

/// True for StatusCode::kIoError — the class of failures a backoff can
/// heal (a file mid-rename, NFS hiccup, transient EIO). Corruption,
/// NotFound, and argument errors are deterministic and never retried.
bool IsTransientIoError(const Status& status);

/// Bounded exponential backoff shared by the generation watcher and
/// RefreshFromDisk (docs/durability.md). Deterministic given
/// jitter_seed: the jitter stream comes from common/rng's xoshiro256**,
/// so chaos tests replay the exact same schedule.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;
  std::uint64_t initial_backoff_ms = 10;
  std::uint64_t max_backoff_ms = 500;
  double multiplier = 2.0;
  /// Cap on cumulative backoff sleep; attempts stop early once the next
  /// delay would exceed it.
  std::uint64_t budget_ms = 2000;
  std::uint64_t jitter_seed = 0x72657472795F6A74ULL;
  bool (*retryable)(const Status&) = &IsTransientIoError;
};

/// Runs `attempt` until it succeeds, returns a non-retryable status,
/// exhausts max_attempts, or exhausts the sleep budget; returns the
/// last status. Every call of `attempt` bumps `attempts_counter` (the
/// registry's retry.attempts; nullptr skips). `sleep_ms` overrides the
/// delay primitive — the watcher passes an interruptible wait, tests
/// pass a recorder.
Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& attempt,
                    Counter* attempts_counter = nullptr,
                    const std::function<void(std::uint64_t)>& sleep_ms = {});

}  // namespace influmax

#endif  // INFLUMAX_COMMON_RETRY_H_
