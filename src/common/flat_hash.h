#ifndef INFLUMAX_COMMON_FLAT_HASH_H_
#define INFLUMAX_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace influmax {

/// 64-bit finalizer (MurmurHash3 fmix64): full avalanche, so the
/// power-of-two masking below is safe even for structured keys like
/// (v << 32 | u) pair packs or sequential ids.
inline std::uint64_t HashMix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Default hasher for integral keys.
template <typename K>
struct FlatHash {
  static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                "FlatHash needs an integral key; supply a custom hasher");
  std::uint64_t operator()(K key) const {
    return HashMix64(static_cast<std::uint64_t>(key));
  }
};

/// Open-addressing robin-hood hash map with flat storage.
///
/// Design (see docs/containers.md for the full contract):
///  - keys are trivially copyable (checked at compile time); values need
///    default-construction + move-assignment only,
///  - power-of-two capacity, max load factor 0.5 (measured on the credit
///    workloads: at 0.8 the mean probe length is ~2.6 and the dependent
///    probe loads erase the flat-layout win; at <= 0.5 it is ~1.3),
///  - probe metadata lives in its own byte array (64 distances per cache
///    line), so most probes touch the packed {value, key} slot array
///    exactly once and misses often touch it not at all,
///  - robin-hood insertion (displace richer occupants) keeps probe
///    sequences short and variance low,
///  - backward-shift deletion: no tombstones, so lookup cost never decays
///    with churn,
///  - per-slot metadata is one byte: 0 = empty, else probe distance + 1.
///
/// Pointers returned by Find()/TryEmplace()/operator[] are invalidated by
/// any subsequent insert or erase (rehash or backward shift may move
/// slots), like iterators of std::vector. A TryEmplace/operator[] that
/// finds its key already present does not count as an insert.
template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatHashMap {
  static_assert(std::is_trivially_copyable_v<K>,
                "FlatHashMap keys must be trivially copyable (POD-like)");

 public:
  FlatHashMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  /// Pointer to the value for `key`, or nullptr when absent.
  const V* Find(K key) const {
    if (size_ == 0) return nullptr;
    std::size_t idx = hash_(key) & mask_;
    std::uint8_t d = 1;
    while (true) {
      const std::uint8_t dist = dist_[idx];
      if (dist < d) return nullptr;  // empty or richer: key absent
      if (dist == d && slots_[idx].key == key) return &slots_[idx].value;
      idx = (idx + 1) & mask_;
      ++d;
    }
  }

  V* Find(K key) {
    return const_cast<V*>(std::as_const(*this).Find(key));
  }

  bool Contains(K key) const { return Find(key) != nullptr; }

  /// Inserts a default-constructed value for `key` if absent. Returns the
  /// value slot and whether an insert happened. Growth only ever follows
  /// an actual insert, so a call that finds an existing key never moves
  /// slots (the pointer-validity contract above depends on this).
  std::pair<V*, bool> TryEmplace(K key) {
    if (slots_.empty()) Grow();
    while (true) {
      const InsertOutcome outcome = InsertProbe(key);
      if (outcome.index == kOverflow) {
        Grow();  // probe chain exceeded the metadata range: re-spread
        continue;
      }
      if (!outcome.inserted) {
        return {&slots_[outcome.index].value, false};
      }
      ++size_;
      if (size_ * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
        Grow();  // over the load limit: re-spread, then re-locate key
        return {&slots_[IndexOf(key)].value, true};
      }
      return {&slots_[outcome.index].value, true};
    }
  }

  /// Inserts or overwrites. Returns the value slot.
  V* InsertOrAssign(K key, V value) {
    auto [slot, inserted] = TryEmplace(key);
    *slot = std::move(value);
    return slot;
  }

  V& operator[](K key) { return *TryEmplace(key).first; }

  /// Removes `key`; returns whether it was present. Backward-shift: the
  /// following displaced run moves one slot back, so no tombstones exist.
  bool Erase(K key) {
    if (size_ == 0) return false;
    std::size_t idx = hash_(key) & mask_;
    std::uint8_t d = 1;
    while (true) {
      const std::uint8_t dist = dist_[idx];
      if (dist < d) return false;
      if (dist == d && slots_[idx].key == key) break;
      idx = (idx + 1) & mask_;
      ++d;
    }
    EraseAtIndex(idx);
    return true;
  }

  /// Erases the entry whose value pointer was just obtained from Find()
  /// on this map, skipping the second probe walk. Precondition: no
  /// mutation happened between the Find() and this call.
  void EraseSlot(V* value_slot) {
    const Slot* slot = reinterpret_cast<const Slot*>(
        reinterpret_cast<const char*>(value_slot) - offsetof(Slot, value));
    EraseAtIndex(static_cast<std::size_t>(slot - slots_.data()));
  }

  /// Drops all entries but keeps the allocated capacity (cheap reuse in
  /// per-iteration scratch maps).
  void Clear() {
    for (std::size_t i = 0; i < dist_.size(); ++i) {
      if (dist_[i] != 0) {
        dist_[i] = 0;
        slots_[i].value = V();
      }
    }
    size_ = 0;
  }

  /// Ensures capacity for `n` entries without intermediate rehashes.
  void Reserve(std::size_t n) {
    std::size_t needed = 16;
    while (needed * kMaxLoadNum / kMaxLoadDen < n) needed *= 2;
    if (needed > slots_.size()) Rehash(needed);
  }

  /// Flat-array footprint: capacity * (sizeof(slot) + 1 metadata byte),
  /// padding included. Values that own heap memory (e.g. spilled
  /// SmallVectors) account for it separately — see
  /// ActionCreditTable::ApproxMemoryBytes.
  std::uint64_t ApproxMemoryBytes() const {
    return static_cast<std::uint64_t>(slots_.size()) *
           (sizeof(Slot) + sizeof(std::uint8_t));
  }

  /// Iteration over occupied slots, in table order. The dereferenced
  /// entry exposes `key` and `value` members; order is deterministic for
  /// a fixed operation history but otherwise unspecified.
  template <bool Const>
  class Iterator {
   public:
    using MapPtr = std::conditional_t<Const, const FlatHashMap*, FlatHashMap*>;
    struct Entry {
      const K& key;
      std::conditional_t<Const, const V&, V&> value;
    };

    Iterator(MapPtr map, std::size_t idx) : map_(map), idx_(idx) { Skip(); }

    Entry operator*() const {
      return Entry{map_->slots_[idx_].key, map_->slots_[idx_].value};
    }

    Iterator& operator++() {
      ++idx_;
      Skip();
      return *this;
    }

    bool operator==(const Iterator& other) const {
      return idx_ == other.idx_;
    }
    bool operator!=(const Iterator& other) const {
      return idx_ != other.idx_;
    }

   private:
    void Skip() {
      while (idx_ < map_->dist_.size() && map_->dist_[idx_] == 0) ++idx_;
    }
    MapPtr map_;
    std::size_t idx_;
  };

  Iterator<false> begin() { return Iterator<false>(this, 0); }
  Iterator<false> end() { return Iterator<false>(this, dist_.size()); }
  Iterator<true> begin() const { return Iterator<true>(this, 0); }
  Iterator<true> end() const { return Iterator<true>(this, dist_.size()); }

 private:
  // Value first: a small key pads after the value instead of key and
  // value each padding to V's alignment, and an empty value type (the
  // FlatHashSet payload) occupies no bytes at all. Probe distances live
  // in dist_ (parallel byte array), not here: probing scans densely
  // packed metadata and only touches a slot to compare a key.
  struct Slot {
    [[no_unique_address]] V value{};
    K key{};
  };

  // Max load factor 1/2: the flat layout only beats node-based maps when
  // probe chains stay near 1 (see the class comment).
  static constexpr std::size_t kMaxLoadNum = 1;
  static constexpr std::size_t kMaxLoadDen = 2;
  // dist is uint8_t with +1 bias; leave headroom before saturation.
  static constexpr std::uint8_t kMaxProbe = 128;
  static constexpr std::size_t kOverflow = static_cast<std::size_t>(-1);

  struct InsertOutcome {
    std::size_t index;  // final slot of `key`, or kOverflow
    bool inserted;
  };

  void EraseAtIndex(std::size_t idx) {
    std::size_t hole = idx;
    std::size_t next = (hole + 1) & mask_;
    while (dist_[next] > 1) {
      slots_[hole].key = slots_[next].key;
      slots_[hole].value = std::move(slots_[next].value);
      dist_[hole] = dist_[next] - 1;
      hole = next;
      next = (next + 1) & mask_;
    }
    dist_[hole] = 0;
    slots_[hole].value = V();  // release any resources held by the value
    --size_;
  }

  void Grow() { Rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void Rehash(std::size_t new_capacity) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_dist = std::move(dist_);
    slots_ = std::vector<Slot>(new_capacity);
    dist_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    for (std::size_t i = 0; i < old_dist.size(); ++i) {
      if (old_dist[i] == 0) continue;
      while (true) {
        const InsertOutcome outcome = InsertProbe(old_slots[i].key);
        if (outcome.index != kOverflow) {
          slots_[outcome.index].value = std::move(old_slots[i].value);
          break;
        }
        // Pathological clustering even after the spread: double again.
        // Entries already moved are re-spread by the recursive Rehash.
        Rehash(slots_.size() * 2);
      }
    }
  }

  // Robin-hood probe for `key`: finds the existing slot, or claims one
  // (displacing richer occupants). Returns kOverflow when the probe chain
  // would exceed kMaxProbe before any slot was claimed; overflow while
  // carrying a displaced entry instead grows inline (the new key is
  // already placed and gets re-located after the rehash).
  InsertOutcome InsertProbe(K key) {
    std::size_t idx = hash_(key) & mask_;
    std::uint8_t d = 1;
    while (true) {
      if (dist_[idx] == 0) {
        slots_[idx].key = key;
        dist_[idx] = d;
        return {idx, true};
      }
      if (dist_[idx] == d && slots_[idx].key == key) {
        return {idx, false};
      }
      if (dist_[idx] < d) {
        // Rich occupant: `key` settles here, the occupant carries on.
        const std::size_t result = idx;
        K carry_key = slots_[idx].key;
        V carry_value = std::move(slots_[idx].value);
        std::uint8_t carry_d = dist_[idx];
        slots_[idx].key = key;
        dist_[idx] = d;
        slots_[idx].value = V();
        while (true) {
          idx = (idx + 1) & mask_;
          ++carry_d;
          if (carry_d >= kMaxProbe) {
            ReinsertAfterGrow(carry_key, std::move(carry_value));
            return {IndexOf(key), true};
          }
          if (dist_[idx] == 0) {
            slots_[idx].key = carry_key;
            slots_[idx].value = std::move(carry_value);
            dist_[idx] = carry_d;
            return {result, true};
          }
          if (dist_[idx] < carry_d) {
            std::swap(carry_key, slots_[idx].key);
            std::swap(carry_value, slots_[idx].value);
            std::swap(carry_d, dist_[idx]);
          }
        }
      }
      idx = (idx + 1) & mask_;
      ++d;
      if (d >= kMaxProbe) return {kOverflow, false};
    }
  }

  void ReinsertAfterGrow(K key, V value) {
    Grow();
    while (true) {
      const InsertOutcome outcome = InsertProbe(key);
      if (outcome.index != kOverflow) {
        slots_[outcome.index].value = std::move(value);
        return;
      }
      Grow();
    }
  }

  std::size_t IndexOf(K key) const {
    std::size_t idx = hash_(key) & mask_;
    std::uint8_t d = 1;
    while (!(dist_[idx] == d && slots_[idx].key == key)) {
      idx = (idx + 1) & mask_;
      ++d;
    }
    return idx;
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> dist_;  // 0 = empty, else probe distance + 1
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  [[no_unique_address]] Hash hash_;
};

/// Set facade over FlatHashMap (empty value payload).
template <typename K, typename Hash = FlatHash<K>>
class FlatHashSet {
 public:
  /// Returns true when `key` was newly inserted.
  bool Insert(K key) { return map_.TryEmplace(key).second; }
  bool Contains(K key) const { return map_.Contains(key); }
  bool Erase(K key) { return map_.Erase(key); }
  void Clear() { map_.Clear(); }
  void Reserve(std::size_t n) { map_.Reserve(n); }
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  std::uint64_t ApproxMemoryBytes() const { return map_.ApproxMemoryBytes(); }

 private:
  struct Empty {};
  FlatHashMap<K, Empty, Hash> map_;
};

}  // namespace influmax

#endif  // INFLUMAX_COMMON_FLAT_HASH_H_
