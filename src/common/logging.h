#ifndef INFLUMAX_COMMON_LOGGING_H_
#define INFLUMAX_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace influmax {
namespace internal_logging {

/// Severity of a log statement.
enum class LogLevel { kInfo, kWarning, kError, kFatal };

/// Stream-style log sink; flushes on destruction, aborts on kFatal. Not
/// intended for hot paths — the library itself logs nothing in inner loops.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << Prefix() << " " << Basename(file) << ":" << line << "] ";
  }

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str() << std::flush;
    if (level_ == LogLevel::kFatal) std::abort();
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  const char* Prefix() const {
    switch (level_) {
      case LogLevel::kInfo:
        return "[INFO ";
      case LogLevel::kWarning:
        return "[WARN ";
      case LogLevel::kError:
        return "[ERROR";
      case LogLevel::kFatal:
        return "[FATAL";
    }
    return "[?    ";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace influmax

#define INFLUMAX_LOG_INFO                                              \
  ::influmax::internal_logging::LogMessage(                            \
      ::influmax::internal_logging::LogLevel::kInfo, __FILE__, __LINE__) \
      .stream()
#define INFLUMAX_LOG_WARN                                                  \
  ::influmax::internal_logging::LogMessage(                                \
      ::influmax::internal_logging::LogLevel::kWarning, __FILE__, __LINE__) \
      .stream()
#define INFLUMAX_LOG_FATAL                                               \
  ::influmax::internal_logging::LogMessage(                              \
      ::influmax::internal_logging::LogLevel::kFatal, __FILE__, __LINE__) \
      .stream()

/// Invariant check that stays on in release builds (experiment harnesses
/// are built in Release mode, where assert() would vanish).
#define INFLUMAX_CHECK(cond)                                   \
  if (!(cond))                                                 \
  INFLUMAX_LOG_FATAL << "Check failed: " #cond " "

#define INFLUMAX_CHECK_OK(expr)                                \
  do {                                                         \
    const ::influmax::Status _st = (expr);                     \
    if (!_st.ok())                                             \
      INFLUMAX_LOG_FATAL << "Status not OK: " << _st.ToString(); \
  } while (0)

#endif  // INFLUMAX_COMMON_LOGGING_H_
