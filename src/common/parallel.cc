#include "common/parallel.h"

#include <algorithm>
#include <barrier>

#include "obs/metrics.h"

namespace influmax {

namespace {

// WorkerPool telemetry (docs/observability.md). Only the threaded
// dispatch path records; the inline path (no spawned threads or
// total <= 1) stays untouched — it is the determinism escape hatch and
// runs per tiny job. Worker utilization over a window is
// pool.busy_ns / (window * workers).
struct PoolMetrics {
  Counter* jobs;
  Counter* items;
  Counter* busy_ns;
  Timer* queue_wait;
  Timer* job_latency;
};

const PoolMetrics& GetPoolMetrics() {
  static const PoolMetrics metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return PoolMetrics{
        reg.FindOrCreateCounter("pool.jobs"),
        reg.FindOrCreateCounter("pool.items"),
        reg.FindOrCreateCounter("pool.busy_ns"),
        reg.FindOrCreateTimer("pool.queue_wait"),
        reg.FindOrCreateTimer("pool.job_latency"),
    };
  }();
  return metrics;
}

}  // namespace

std::size_t EffectiveThreadCount(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelForChunked(
    std::size_t total, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (total == 0) return;
  const std::size_t workers =
      std::min(EffectiveThreadCount(num_threads), total);
  if (workers == 1) {
    body(0, 0, total);
    return;
  }
  const std::size_t chunk = (total + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(begin + chunk, total);
    if (begin >= end) break;
    threads.emplace_back([&body, t, begin, end] { body(t, begin, end); });
  }
  // The calling thread is worker 0: N workers cost N - 1 spawns.
  body(0, 0, std::min(chunk, total));
  for (auto& th : threads) th.join();
}

void ParallelForDynamic(
    std::size_t total, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (total == 0) return;
  const std::size_t workers =
      std::min(EffectiveThreadCount(num_threads), total);
  if (workers == 1) {
    for (std::size_t i = 0; i < total; ++i) body(0, i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const auto drain = [&body, &next, total](std::size_t t) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      body(t, i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    threads.emplace_back([&drain, t] { drain(t); });
  }
  // The calling thread is worker 0: N workers cost N - 1 spawns.
  drain(0);
  for (auto& th : threads) th.join();
}

void ParallelForLevels(
    std::span<const std::size_t> level_begin, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (level_begin.size() < 2) return;
  const std::size_t total = level_begin.back();
  if (total == 0) return;
  const std::size_t workers =
      std::min(EffectiveThreadCount(num_threads), total);
  if (workers == 1) {
    for (std::size_t i = 0; i < total; ++i) body(0, i);
    return;
  }
  const std::size_t num_levels = level_begin.size() - 1;
  std::atomic<std::size_t> cursor{level_begin[0]};
  std::atomic<std::size_t> level{0};
  // The completion step runs on exactly one thread while every worker is
  // parked at the barrier, so plain resets of the shared cursor are safe
  // (a worker may have bumped it past the level end; the reset clobbers
  // the overshoot). arrive_and_wait publishes the completed level's
  // writes to every worker it releases.
  const auto on_completion = [&]() noexcept {
    const std::size_t next = level.fetch_add(1, std::memory_order_relaxed) + 1;
    if (next < num_levels) {
      cursor.store(level_begin[next], std::memory_order_relaxed);
    }
  };
  std::barrier barrier(static_cast<std::ptrdiff_t>(workers), on_completion);
  const auto drain = [&](std::size_t t) {
    for (std::size_t l = 0; l < num_levels; ++l) {
      const std::size_t end = level_begin[l + 1];
      for (;;) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) break;
        body(t, i);
      }
      barrier.arrive_and_wait();
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    threads.emplace_back([&drain, t] { drain(t); });
  }
  // The calling thread is worker 0: N workers cost N - 1 spawns.
  drain(0);
  for (auto& th : threads) th.join();
}

WorkerPool::WorkerPool(std::size_t num_threads) {
  const std::size_t workers = EffectiveThreadCount(num_threads);
  threads_.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    threads_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (auto& th : threads_) th.join();
}

void WorkerPool::WorkerLoop(std::size_t worker_index) {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&] { return stop_ || job_seq_ != seen; });
      if (stop_) return;
      seen = job_seq_;
      job = job_;
    }
    if constexpr (kObsEnabled) {
      GetPoolMetrics().queue_wait->Record(MonotonicNowNs() - job->publish_ns);
    }
    Drain(*job, worker_index);
  }
}

void WorkerPool::Drain(Job& job, std::size_t worker_index) {
  if constexpr (kObsEnabled) {
    const std::uint64_t t0 = MonotonicNowNs();
    DrainLoop(job, worker_index);
    GetPoolMetrics().busy_ns->Add(MonotonicNowNs() - t0);
    return;
  }
  DrainLoop(job, worker_index);
}

void WorkerPool::DrainLoop(Job& job, std::size_t worker_index) {
  for (;;) {
    const std::size_t i = job.cursor.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.total) return;
    (*job.body)(worker_index, i);
    // acq_rel: releases this body's writes to the caller's acquire read
    // of `completed` below.
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.total) {
      // Last index done: release the caller. The empty lock pairs with
      // the caller's under-lock predicate check, so the notify cannot
      // land between its check and its sleep.
      { std::lock_guard<std::mutex> lock(mu_); }
      done_cv_.notify_all();
    }
  }
}

void WorkerPool::ParallelFor(
    std::size_t total,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (total == 0) return;
  if (threads_.empty() || total == 1) {
    for (std::size_t i = 0; i < total; ++i) body(0, i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->total = total;
  if constexpr (kObsEnabled) {
    const PoolMetrics& metrics = GetPoolMetrics();
    metrics.jobs->Increment();
    metrics.items->Add(total);
    job->publish_ns = MonotonicNowNs();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++job_seq_;
  }
  job_cv_.notify_all();
  // The calling thread is worker 0.
  Drain(*job, 0);
  // Wait for finished *indices*, not woken workers: once every body has
  // returned, `body` cannot dangle (late workers find the cursor
  // exhausted and never touch it), so the caller leaves without paying
  // for parked threads' wakeups.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job->completed.load(std::memory_order_acquire) == job->total;
  });
  if constexpr (kObsEnabled) {
    GetPoolMetrics().job_latency->Record(MonotonicNowNs() - job->publish_ns);
  }
}

}  // namespace influmax
