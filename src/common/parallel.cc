#include "common/parallel.h"

#include <algorithm>
#include <barrier>

namespace influmax {

std::size_t EffectiveThreadCount(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelForChunked(
    std::size_t total, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (total == 0) return;
  const std::size_t workers =
      std::min(EffectiveThreadCount(num_threads), total);
  if (workers == 1) {
    body(0, 0, total);
    return;
  }
  const std::size_t chunk = (total + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(begin + chunk, total);
    if (begin >= end) break;
    threads.emplace_back([&body, t, begin, end] { body(t, begin, end); });
  }
  // The calling thread is worker 0: N workers cost N - 1 spawns.
  body(0, 0, std::min(chunk, total));
  for (auto& th : threads) th.join();
}

void ParallelForDynamic(
    std::size_t total, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (total == 0) return;
  const std::size_t workers =
      std::min(EffectiveThreadCount(num_threads), total);
  if (workers == 1) {
    for (std::size_t i = 0; i < total; ++i) body(0, i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const auto drain = [&body, &next, total](std::size_t t) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      body(t, i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    threads.emplace_back([&drain, t] { drain(t); });
  }
  // The calling thread is worker 0: N workers cost N - 1 spawns.
  drain(0);
  for (auto& th : threads) th.join();
}

void ParallelForLevels(
    std::span<const std::size_t> level_begin, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (level_begin.size() < 2) return;
  const std::size_t total = level_begin.back();
  if (total == 0) return;
  const std::size_t workers =
      std::min(EffectiveThreadCount(num_threads), total);
  if (workers == 1) {
    for (std::size_t i = 0; i < total; ++i) body(0, i);
    return;
  }
  const std::size_t num_levels = level_begin.size() - 1;
  std::atomic<std::size_t> cursor{level_begin[0]};
  std::atomic<std::size_t> level{0};
  // The completion step runs on exactly one thread while every worker is
  // parked at the barrier, so plain resets of the shared cursor are safe
  // (a worker may have bumped it past the level end; the reset clobbers
  // the overshoot). arrive_and_wait publishes the completed level's
  // writes to every worker it releases.
  const auto on_completion = [&]() noexcept {
    const std::size_t next = level.fetch_add(1, std::memory_order_relaxed) + 1;
    if (next < num_levels) {
      cursor.store(level_begin[next], std::memory_order_relaxed);
    }
  };
  std::barrier barrier(static_cast<std::ptrdiff_t>(workers), on_completion);
  const auto drain = [&](std::size_t t) {
    for (std::size_t l = 0; l < num_levels; ++l) {
      const std::size_t end = level_begin[l + 1];
      for (;;) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) break;
        body(t, i);
      }
      barrier.arrive_and_wait();
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    threads.emplace_back([&drain, t] { drain(t); });
  }
  // The calling thread is worker 0: N workers cost N - 1 spawns.
  drain(0);
  for (auto& th : threads) th.join();
}

}  // namespace influmax
