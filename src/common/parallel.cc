#include "common/parallel.h"

#include <algorithm>

namespace influmax {

std::size_t EffectiveThreadCount(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelForChunked(
    std::size_t total, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (total == 0) return;
  const std::size_t workers =
      std::min(EffectiveThreadCount(num_threads), total);
  if (workers == 1) {
    body(0, 0, total);
    return;
  }
  const std::size_t chunk = (total + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(begin + chunk, total);
    if (begin >= end) break;
    threads.emplace_back([&body, t, begin, end] { body(t, begin, end); });
  }
  // The calling thread is worker 0: N workers cost N - 1 spawns.
  body(0, 0, std::min(chunk, total));
  for (auto& th : threads) th.join();
}

void ParallelForDynamic(
    std::size_t total, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (total == 0) return;
  const std::size_t workers =
      std::min(EffectiveThreadCount(num_threads), total);
  if (workers == 1) {
    for (std::size_t i = 0; i < total; ++i) body(0, i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const auto drain = [&body, &next, total](std::size_t t) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      body(t, i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    threads.emplace_back([&drain, t] { drain(t); });
  }
  // The calling thread is worker 0: N workers cost N - 1 spawns.
  drain(0);
  for (auto& th : threads) th.join();
}

}  // namespace influmax
