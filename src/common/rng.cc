#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace influmax {

double Rng::NextExponential(double mean) {
  assert(mean > 0.0);
  // Inverse transform; 1 - U in (0, 1] avoids log(0).
  return -mean * std::log(1.0 - NextDouble());
}

double Rng::NextGaussian() {
  // Box-Muller; we discard the second value to keep the generator
  // stateless between calls (reproducibility over speed here).
  double u1 = 1.0 - NextDouble();  // (0, 1]
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::uint64_t Rng::NextZipf(double alpha, std::uint64_t max_value) {
  assert(alpha > 1.0);
  assert(max_value >= 1);
  // Continuous Pareto inverse transform truncated to [1, max_value + 1).
  const double exponent = 1.0 / (1.0 - alpha);
  for (;;) {
    double u = NextDouble();
    double x = std::pow(1.0 - u, exponent);  // Pareto(alpha) on [1, inf)
    if (x < static_cast<double>(max_value) + 1.0) {
      return static_cast<std::uint64_t>(x);
    }
  }
}

}  // namespace influmax
