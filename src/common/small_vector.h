#ifndef INFLUMAX_COMMON_SMALL_VECTOR_H_
#define INFLUMAX_COMMON_SMALL_VECTOR_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace influmax {

/// Inline-storage vector for trivially copyable elements. The first
/// `InlineCapacity` elements live inside the object; larger sizes spill to
/// a single heap buffer. Built for the credit-store adjacency lists, where
/// the common case is a handful of ids and the map that owns the lists
/// moves values during rehash / backward-shift deletion, so moves must be
/// cheap (a memcpy of the inline buffer or a pointer steal).
template <typename T, std::size_t InlineCapacity>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable elements");
  static_assert(InlineCapacity >= 1, "inline capacity must be at least 1");

 public:
  SmallVector() = default;

  SmallVector(const SmallVector& other) { CopyFrom(other); }

  SmallVector(SmallVector&& other) noexcept { StealFrom(&other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this == &other) return *this;
    FreeHeap();
    // Back to a valid inline state before CopyFrom may throw bad_alloc,
    // so the destructor never sees the freed heap_ again.
    size_ = 0;
    capacity_ = InlineCapacity;
    CopyFrom(other);
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this == &other) return *this;
    FreeHeap();
    size_ = 0;
    capacity_ = InlineCapacity;
    StealFrom(&other);
    return *this;
  }

  ~SmallVector() { FreeHeap(); }

  std::uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint32_t capacity() const { return capacity_; }

  T* data() { return is_inline() ? inline_ : heap_; }
  const T* data() const { return is_inline() ? inline_ : heap_; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  void push_back(T value) {
    if (size_ == capacity_) Grow();
    data()[size_++] = value;
  }

  void clear() { size_ = 0; }

  /// Removes every element for which `pred(element)` is true, preserving
  /// the relative order of survivors. In-place: never reallocates, so
  /// pointers into data() stay valid (elements shift down).
  template <typename Pred>
  void RemoveIf(Pred pred) {
    T* d = data();
    std::uint32_t out = 0;
    for (std::uint32_t i = 0; i < size_; ++i) {
      if (!pred(d[i])) d[out++] = d[i];
    }
    size_ = out;
  }

  /// Heap bytes owned beyond the object footprint (0 while inline).
  std::uint64_t HeapBytes() const {
    return is_inline() ? 0
                       : static_cast<std::uint64_t>(capacity_) * sizeof(T);
  }

 private:
  bool is_inline() const { return capacity_ <= InlineCapacity; }

  void Grow() {
    const std::uint32_t new_capacity = capacity_ * 2;
    T* buffer = static_cast<T*>(std::malloc(new_capacity * sizeof(T)));
    if (buffer == nullptr) throw std::bad_alloc();
    std::memcpy(buffer, data(), size_ * sizeof(T));
    FreeHeap();
    heap_ = buffer;
    capacity_ = new_capacity;
  }

  void FreeHeap() {
    if (!is_inline()) std::free(heap_);
  }

  void CopyFrom(const SmallVector& other) {
    size_ = other.size_;
    if (other.is_inline()) {
      capacity_ = InlineCapacity;
      std::memcpy(inline_, other.inline_, size_ * sizeof(T));
    } else {
      capacity_ = other.capacity_;
      heap_ = static_cast<T*>(std::malloc(capacity_ * sizeof(T)));
      if (heap_ == nullptr) throw std::bad_alloc();
      std::memcpy(heap_, other.heap_, size_ * sizeof(T));
    }
  }

  void StealFrom(SmallVector* other) {
    size_ = other->size_;
    capacity_ = other->capacity_;
    if (other->is_inline()) {
      std::memcpy(inline_, other->inline_, size_ * sizeof(T));
    } else {
      heap_ = other->heap_;
      other->capacity_ = InlineCapacity;
    }
    other->size_ = 0;
  }

  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = InlineCapacity;
  union {
    T inline_[InlineCapacity];
    T* heap_;
  };
};

}  // namespace influmax

#endif  // INFLUMAX_COMMON_SMALL_VECTOR_H_
