#ifndef INFLUMAX_COMMON_TIMER_H_
#define INFLUMAX_COMMON_TIMER_H_

#include <chrono>

namespace influmax {

/// Monotonic wall-clock stopwatch used by the experiment harnesses
/// (Figures 7 and 8 report wall time).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace influmax

#endif  // INFLUMAX_COMMON_TIMER_H_
