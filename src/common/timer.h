#ifndef INFLUMAX_COMMON_TIMER_H_
#define INFLUMAX_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <limits>

namespace influmax {

/// Monotonic wall-clock stopwatch used by the experiment harnesses
/// (Figures 7 and 8 report wall time).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A point on the monotonic clock by which an operation must finish.
///
/// Deadlines compose where per-call timeouts cannot: one Deadline flows
/// through retry loops (RunWithRetry stops before a backoff that would
/// overshoot it), socket waits (poll timeouts come from remaining_ms()),
/// and the wire protocol (the frame header carries remaining_us(), since
/// two machines share no monotonic epoch — the receiver rebuilds the
/// deadline from the remaining budget at receipt). Infinite() is the
/// explicit "no deadline" value; it never expires and its remaining_*()
/// saturate, so callers need no special-casing.
class Deadline {
 public:
  /// The wire encoding of "no deadline" (frame header deadline_us).
  static constexpr std::uint64_t kNoDeadlineUs =
      std::numeric_limits<std::uint64_t>::max();

  /// Never expires.
  static Deadline Infinite() { return Deadline(); }

  static Deadline AfterMs(std::uint64_t ms) { return AfterUs(ms * 1000); }

  /// `us == kNoDeadlineUs` decodes back to Infinite() — the round-trip
  /// a frame header needs.
  static Deadline AfterUs(std::uint64_t us) {
    if (us == kNoDeadlineUs) return Infinite();
    Deadline d;
    d.infinite_ = false;
    d.at_ = Clock::now() + std::chrono::microseconds(us);
    return d;
  }

  bool infinite() const { return infinite_; }

  bool expired() const { return !infinite_ && Clock::now() >= at_; }

  /// Remaining budget; 0 once expired, kNoDeadlineUs when infinite.
  /// Rounded up to the next whole unit so a poll timeout derived from it
  /// never spins at sub-unit remainders.
  std::uint64_t remaining_us() const {
    if (infinite_) return kNoDeadlineUs;
    const auto left = at_ - Clock::now();
    if (left <= Clock::duration::zero()) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::ceil<std::chrono::microseconds>(left).count());
  }
  std::uint64_t remaining_ms() const {
    if (infinite_) return kNoDeadlineUs;
    const auto left = at_ - Clock::now();
    if (left <= Clock::duration::zero()) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::ceil<std::chrono::milliseconds>(left).count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool infinite_ = true;
  Clock::time_point at_{};
};

}  // namespace influmax

#endif  // INFLUMAX_COMMON_TIMER_H_
