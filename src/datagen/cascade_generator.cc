#include "datagen/cascade_generator.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/rng.h"
#include "graph/generators.h"

namespace influmax {
namespace {

// Samples an index from the cumulative weight array via binary search.
std::size_t SampleCumulative(const std::vector<double>& cumulative,
                             Rng& rng) {
  const double x = rng.NextDouble() * cumulative.back();
  return static_cast<std::size_t>(
      std::upper_bound(cumulative.begin(), cumulative.end(), x) -
      cumulative.begin());
}

// Poisson draw via inversion (small means only, which is all we need for
// background adopters).
std::uint32_t SamplePoisson(double mean, Rng& rng) {
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  double product = rng.NextDouble();
  std::uint32_t count = 0;
  while (product > limit) {
    ++count;
    product *= rng.NextDouble();
  }
  return count;
}

}  // namespace

Result<SyntheticDataset> GenerateCascadeDataset(Graph graph,
                                                const CascadeConfig& config) {
  if (config.num_actions == 0) {
    return Status::InvalidArgument("CascadeConfig: num_actions must be > 0");
  }
  if (config.edge_prob_min < 0.0 || config.edge_prob_max > 1.0 ||
      config.edge_prob_min > config.edge_prob_max) {
    return Status::InvalidArgument(
        "CascadeConfig: need 0 <= edge_prob_min <= edge_prob_max <= 1");
  }
  if (config.delay_min <= 0.0 || config.delay_min > config.delay_max) {
    return Status::InvalidArgument(
        "CascadeConfig: need 0 < delay_min <= delay_max");
  }
  if (config.initiator_zipf_alpha <= 1.0) {
    return Status::InvalidArgument(
        "CascadeConfig: initiator_zipf_alpha must be > 1");
  }
  if (config.influence_proneness_min < 0.0 ||
      config.influence_proneness_min > config.influence_proneness_max) {
    return Status::InvalidArgument(
        "CascadeConfig: need 0 <= influence_proneness_min <= "
        "influence_proneness_max");
  }
  const NodeId n = graph.num_nodes();
  if (n == 0) {
    return Status::InvalidArgument("CascadeConfig: graph has no nodes");
  }

  SyntheticDataset data;
  Rng rng(config.seed);

  // Hidden truth: susceptibility, edge probabilities, edge delays.
  data.susceptibility.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    data.susceptibility[u] =
        rng.NextUniform(config.susceptibility_min, config.susceptibility_max);
  }
  data.true_probabilities = EdgeProbabilities(graph.num_edges());
  data.true_mean_delay.resize(graph.num_edges());
  for (NodeId v = 0; v < n; ++v) {
    const EdgeIndex base = graph.OutEdgeBegin(v);
    const auto neighbors = graph.OutNeighbors(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const NodeId u = neighbors[i];
      const double raw =
          config.edge_prob_min +
          (config.edge_prob_max - config.edge_prob_min) *
              std::pow(rng.NextDouble(), config.edge_prob_shape);
      data.true_probabilities[base + i] =
          std::clamp(raw * data.susceptibility[u], 0.0, 1.0);
      data.true_mean_delay[base + i] =
          rng.NextUniform(config.delay_min, config.delay_max);
    }
  }

  // Activity weights: a heavy-tailed random component (shuffled rank to
  // decorrelate from node id) times a degree coupling — well-followed
  // users initiate disproportionately many actions, so cascade sizes
  // carry signal about their initiators.
  std::vector<double> activity_cumulative(n);
  {
    std::vector<NodeId> rank_of(n);
    for (NodeId u = 0; u < n; ++u) rank_of[u] = u;
    for (NodeId i = n; i > 1; --i) {
      std::swap(rank_of[i - 1], rank_of[rng.NextBounded(i)]);
    }
    double acc = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      const double random_part = std::pow(
          static_cast<double>(rank_of[u]) + 1.0, -config.activity_skew);
      const double degree_part =
          std::pow(static_cast<double>(graph.OutDegree(u)) + 1.0,
                   config.activity_degree_exponent);
      acc += random_part * degree_part;
      activity_cumulative[u] = acc;
    }
  }

  // Cascade simulation. Event queue keyed by adoption time; each edge
  // fires at most once per action.
  struct Event {
    Timestamp time;
    NodeId user;
    bool operator>(const Event& other) const { return time > other.time; }
  };
  ActionLogBuilder log_builder(n);
  std::vector<Timestamp> adopted_at(n, kNeverPerformed);
  std::vector<NodeId> touched;

  for (ActionId a = 0; a < config.num_actions; ++a) {
    const Timestamp t0 = static_cast<Timestamp>(a) * config.action_time_gap;
    touched.clear();

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
    const std::uint32_t num_initiators = std::min<std::uint32_t>(
        config.max_initiators,
        static_cast<std::uint32_t>(
            rng.NextZipf(config.initiator_zipf_alpha, config.max_initiators)));
    for (std::uint32_t i = 0; i < num_initiators; ++i) {
      const NodeId u =
          static_cast<NodeId>(SampleCumulative(activity_cumulative, rng));
      // Initiators adopt within a small jitter window so multi-initiator
      // traces have distinct, realistic start times.
      queue.push({t0 + rng.NextUniform(0.0, 0.25), u});
    }
    // Background adopters: spontaneous, uniform over users, spread across
    // a window comparable to typical cascade depth, scaled by the
    // action's popularity.
    const double popularity = static_cast<double>(
        rng.NextZipf(config.popularity_zipf_alpha, config.popularity_max));
    const std::uint32_t background = SamplePoisson(
        config.background_adopters_per_action * popularity, rng);
    const double proneness = rng.NextUniform(
        config.influence_proneness_min, config.influence_proneness_max);
    for (std::uint32_t i = 0; i < background; ++i) {
      const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
      queue.push({t0 + rng.NextUniform(0.0, 10.0 * config.delay_max), u});
    }

    NodeId cascade_size = 0;
    while (!queue.empty()) {
      const Event ev = queue.top();
      queue.pop();
      if (adopted_at[ev.user] != kNeverPerformed) continue;  // already in
      if (config.max_cascade_size != 0 &&
          cascade_size >= config.max_cascade_size) {
        break;
      }
      adopted_at[ev.user] = ev.time;
      touched.push_back(ev.user);
      ++cascade_size;
      log_builder.Add(ev.user, a, ev.time);

      const EdgeIndex base = graph.OutEdgeBegin(ev.user);
      const auto neighbors = graph.OutNeighbors(ev.user);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const NodeId next = neighbors[i];
        if (adopted_at[next] != kNeverPerformed) continue;
        const double success_prob = std::min(
            1.0, data.true_probabilities[base + i] * proneness);
        if (rng.NextBernoulli(success_prob)) {
          const Timestamp t =
              ev.time + rng.NextExponential(data.true_mean_delay[base + i]);
          queue.push({t, next});
        }
      }
    }
    for (NodeId u : touched) adopted_at[u] = kNeverPerformed;
  }

  Result<ActionLog> log = log_builder.Build();
  if (!log.ok()) return log.status();
  data.log = std::move(log).value();
  data.graph = std::move(graph);
  return data;
}

namespace {

DatasetPreset MakePreset(std::string name, double scale, NodeId nodes,
                         std::uint32_t epn, double recip, ActionId actions,
                         double activity_skew, double edge_prob_max,
                         double background) {
  DatasetPreset preset;
  preset.name = std::move(name);
  preset.num_nodes = std::max<NodeId>(100, static_cast<NodeId>(nodes * scale));
  preset.edges_per_node = epn;
  preset.reciprocation_prob = recip;
  preset.cascades.num_actions =
      std::max<ActionId>(50, static_cast<ActionId>(actions * scale));
  preset.cascades.activity_skew = activity_skew;
  preset.cascades.edge_prob_max = edge_prob_max;
  preset.cascades.background_adopters_per_action = background;
  // Community subgraphs have flatter degree tails than whole crawls, and
  // activity only partially tracks follower count.
  preset.uniform_attachment_fraction = 0.5;
  preset.cascades.activity_degree_exponent = 0.5;
  return preset;
}

}  // namespace

DatasetPreset FlixsterSmallPreset(double scale) {
  // Flixster Small (paper): 13K nodes, 192.4K edges (avg deg ~15),
  // 25K propagations. Mutual friendships -> full reciprocation. Movie
  // adoption is mostly spontaneous (popularity-driven) with a social
  // boost, so ties are weak-ish and background adoption is heavy — this
  // is what gives large propagations their large initiator sets.
  DatasetPreset p = MakePreset("flixster_small", scale, /*nodes=*/2600,
                               /*epn=*/4, /*recip=*/1.0, /*actions=*/1200,
                               /*activity_skew=*/0.9, /*edge_prob_max=*/0.25,
                               /*background=*/2.0);
  p.cascades.popularity_zipf_alpha = 1.5;
  p.cascades.popularity_max = 100;
  p.cascades.influence_proneness_min = 0.25;
  p.cascades.influence_proneness_max = 1.75;
  p.cascades.seed = 101;
  return p;
}

DatasetPreset FlickrSmallPreset(double scale) {
  // Flickr Small (paper): 14.8K nodes, 1.17M edges (avg deg ~79) —
  // follow edges, sparse reciprocation, denser graph.
  DatasetPreset p = MakePreset("flickr_small", scale, /*nodes=*/3000,
                               /*epn=*/12, /*recip=*/0.3, /*actions=*/1400,
                               /*activity_skew=*/0.7, /*edge_prob_max=*/0.10,
                               /*background=*/2.5);
  p.cascades.popularity_zipf_alpha = 1.6;
  p.cascades.popularity_max = 100;
  p.cascades.influence_proneness_min = 0.25;
  p.cascades.influence_proneness_max = 1.75;
  p.cascades.seed = 202;
  return p;
}

DatasetPreset FlixsterLargePreset(double scale) {
  // Bigger graphs make the same per-edge strengths supercritical, so the
  // Large presets use weaker ties plus a hard cascade cap (real cascades
  // never swallow the whole graph either).
  DatasetPreset p = MakePreset("flixster_large", scale, /*nodes=*/40000,
                               /*epn=*/7, /*recip=*/1.0, /*actions=*/12000,
                               /*activity_skew=*/0.9, /*edge_prob_max=*/0.18,
                               /*background=*/1.0);
  p.cascades.max_cascade_size = 1500;
  p.cascades.influence_proneness_min = 0.25;
  p.cascades.influence_proneness_max = 1.75;
  p.cascades.seed = 303;
  return p;
}

DatasetPreset FlickrLargePreset(double scale) {
  DatasetPreset p = MakePreset("flickr_large", scale, /*nodes=*/50000,
                               /*epn=*/15, /*recip=*/0.3, /*actions=*/16000,
                               /*activity_skew=*/0.7, /*edge_prob_max=*/0.08,
                               /*background=*/1.5);
  p.cascades.max_cascade_size = 1500;
  p.cascades.influence_proneness_min = 0.25;
  p.cascades.influence_proneness_max = 1.75;
  p.cascades.seed = 404;
  return p;
}

Result<SyntheticDataset> BuildPresetDataset(const DatasetPreset& preset,
                                            std::uint64_t seed_override) {
  PreferentialAttachmentConfig graph_config;
  graph_config.num_nodes = preset.num_nodes;
  graph_config.edges_per_node = preset.edges_per_node;
  graph_config.reciprocation_prob = preset.reciprocation_prob;
  graph_config.uniform_attachment_fraction =
      preset.uniform_attachment_fraction;
  const std::uint64_t seed =
      seed_override != 0 ? seed_override : preset.cascades.seed;
  Result<Graph> graph = GeneratePreferentialAttachment(graph_config, seed);
  if (!graph.ok()) return graph.status();

  CascadeConfig cascades = preset.cascades;
  cascades.seed = seed + 1;
  return GenerateCascadeDataset(std::move(graph).value(), cascades);
}

}  // namespace influmax
