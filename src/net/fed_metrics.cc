#include "net/fed_metrics.h"

#include <cstddef>
#include <set>
#include <utility>

namespace influmax {

namespace {

/// `name{labels} value` or `name value` -> the same line with
/// `instance="<label>"` injected into (or as) the label set.
std::string InjectInstanceLabel(const std::string& line,
                                const std::string& instance) {
  const std::string label = "instance=\"" + instance + "\"";
  const std::size_t brace = line.find('{');
  const std::size_t space = line.find(' ');
  if (brace != std::string::npos &&
      (space == std::string::npos || brace < space)) {
    // Existing label set: name{le="10"} 5 -> name{instance="x",le="10"} 5
    return line.substr(0, brace + 1) + label + "," + line.substr(brace + 1);
  }
  if (space != std::string::npos) {
    // Bare sample: name 5 -> name{instance="x"} 5
    return line.substr(0, space) + "{" + label + "}" + line.substr(space);
  }
  return line;  // not a sample line; pass through untouched
}

}  // namespace

Result<std::string> HttpGetBody(const std::string& host, int port,
                                const std::string& path,
                                const Deadline& deadline) {
  auto conn_or = TcpConn::Connect(host, port, deadline);
  INFLUMAX_RETURN_IF_ERROR(conn_or.status());
  TcpConn conn = std::move(conn_or).value();

  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  INFLUMAX_RETURN_IF_ERROR(
      conn.SendAll(request.data(), request.size(), deadline));

  std::string response;
  char buf[4096];
  for (;;) {
    auto n = conn.RecvSome(buf, sizeof(buf), deadline);
    INFLUMAX_RETURN_IF_ERROR(n.status());
    if (*n == 0) break;  // orderly close = end of an HTTP/1.0 response
    response.append(buf, *n);
  }

  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Unavailable("http response from " + host + ":" +
                               std::to_string(port) + " has no header end");
  }
  // Status line: "HTTP/1.0 200 OK".
  const std::size_t code_at = response.find(' ');
  if (code_at == std::string::npos ||
      response.compare(code_at + 1, 3, "200") != 0) {
    return Status::Unavailable(
        "http status '" + response.substr(0, response.find("\r\n")) +
        "' from " + host + ":" + std::to_string(port) + path);
  }
  return response.substr(header_end + 4);
}

std::string MergePrometheusBodies(
    const std::vector<std::pair<std::string, std::string>>& bodies) {
  std::string out;
  std::set<std::string> comments_seen;
  for (const auto& [instance, body] : bodies) {
    std::size_t pos = 0;
    while (pos < body.size()) {
      std::size_t eol = body.find('\n', pos);
      if (eol == std::string::npos) eol = body.size();
      const std::string line = body.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (line[0] == '#') {
        // One HELP/TYPE per metric across the fleet; a duplicate TYPE
        // line would make the merged exposition invalid.
        if (comments_seen.insert(line).second) {
          out += line;
          out += '\n';
        }
        continue;
      }
      out += InjectInstanceLabel(line, instance);
      out += '\n';
    }
  }
  return out;
}

Result<std::unique_ptr<FleetMetricsServer>> FleetMetricsServer::Start(
    int port, std::vector<FleetTarget> targets) {
  auto listener_or = TcpListener::Bind(port);
  INFLUMAX_RETURN_IF_ERROR(listener_or.status());

  std::unique_ptr<FleetMetricsServer> server(new FleetMetricsServer());
  server->targets_ = std::move(targets);
  server->listener_ = std::move(listener_or).value();
  server->port_ = server->listener_.port();
  server->thread_ = std::thread([s = server.get()] { s->ServeLoop(); });
  return server;
}

FleetMetricsServer::~FleetMetricsServer() { Stop(); }

void FleetMetricsServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  listener_.Abort();
  if (thread_.joinable()) thread_.join();
  listener_.Close();
}

void FleetMetricsServer::ServeLoop() {
  for (;;) {
    auto conn_or = listener_.Accept(Deadline::Infinite());
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      if (stopping_) return;
    }
    if (!conn_or.ok()) return;
    HandleConn(std::move(conn_or).value());
  }
}

void FleetMetricsServer::HandleConn(TcpConn conn) {
  const Deadline deadline = Deadline::AfterMs(5000);
  std::string request;
  char buf[1024];
  while (request.size() < 4096 &&
         request.find("\r\n\r\n") == std::string::npos) {
    auto n = conn.RecvSome(buf, sizeof(buf), deadline);
    if (!n.ok() || *n == 0) break;
    request.append(buf, *n);
  }

  std::string path = "/";
  if (request.rfind("GET ", 0) == 0) {
    const std::size_t end = request.find(' ', 4);
    if (end != std::string::npos) path = request.substr(4, end - 4);
  }

  std::string status_line = "HTTP/1.0 200 OK";
  std::string body;
  if (path == "/metrics") {
    std::vector<std::pair<std::string, std::string>> bodies;
    std::string failures;
    for (const FleetTarget& target : targets_) {
      auto scraped = HttpGetBody(target.host, target.port, "/metrics",
                                 Deadline::AfterMs(2000));
      if (scraped.ok()) {
        bodies.emplace_back(target.instance, std::move(scraped).value());
      } else {
        failures += "# fleet scrape failed instance=\"" + target.instance +
                    "\": " + scraped.status().message() + "\n";
      }
    }
    body = MergePrometheusBodies(bodies) + failures;
  } else if (path == "/healthz") {
    body = "ok targets=" + std::to_string(targets_.size()) + "\n";
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body = "not found\n";
  }
  const std::string response = status_line +
                               "\r\nContent-Type: text/plain; version=0.0.4" +
                               "\r\nContent-Length: " +
                               std::to_string(body.size()) +
                               "\r\nConnection: close\r\n\r\n" + body;
  (void)conn.SendAll(response.data(), response.size(), deadline);
}

}  // namespace influmax
