#ifndef INFLUMAX_NET_WIRE_H_
#define INFLUMAX_NET_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "common/timer.h"
#include "common/types.h"
#include "net/socket.h"

namespace influmax {

/// The shard-serving wire protocol (docs/networking.md): length-prefixed
/// binary frames over TCP, one request frame -> one response frame per
/// RPC, payloads serialized with common/binary_io's BufferWriter/
/// BufferReader (the same typed-section grammar as every on-disk
/// container).
///
/// Frame layout (little-endian, host == wire like the snapshot files):
///   u32 payload_len      bytes after this 32-byte header
///   u8  version          kWireVersion; mismatch rejected before payload
///   u8  type             MsgType
///   u8  kernel_mode      GainKernelMode for this request (requests only)
///   u8  reserved
///   u64 generation       the client's generation pin (0 = none/hello)
///   u64 deadline_us      REMAINING budget at send; kNoDeadlineUs = none.
///                        Remaining-not-absolute because two machines
///                        share no monotonic epoch; the receiver rebuilds
///                        Deadline::AfterUs(deadline_us) at receipt.
///   u64 fingerprint      FNV-1a over the header (this field zeroed) +
///                        payload; a torn or bit-flipped frame fails
///                        closed as Corruption, which the client treats
///                        as a failover trigger.
///
/// Defensive bounds mirror the snapshot readers: payload_len is checked
/// against kMaxFramePayloadBytes BEFORE any allocation, and every
/// variable-length payload field re-validates its own length against
/// both a semantic cap and the bytes actually present.
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderBytes = 32;
inline constexpr std::uint32_t kMaxFramePayloadBytes = 256u << 20;
/// Caps every user/seed vector a frame can carry.
inline constexpr std::uint64_t kMaxWireElements = 1u << 28;
inline constexpr std::uint64_t kMaxWireMessageBytes = 1u << 16;

enum class MsgType : std::uint8_t {
  kError = 0,
  kHello = 1,
  kHelloOk = 2,
  kPing = 3,
  kPong = 4,
  kFold = 5,
  kFoldOk = 6,
  kFoldBatch = 7,
  kFoldBatchOk = 8,
  kCommit = 9,
  kCommitOk = 10,
  kReset = 11,
  kResetOk = 12,
};

struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint8_t version = kWireVersion;
  std::uint8_t type = 0;
  std::uint8_t kernel_mode = 0;
  std::uint8_t reserved = 0;
  std::uint64_t generation = 0;
  std::uint64_t deadline_us = Deadline::kNoDeadlineUs;
  std::uint64_t fingerprint = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// FNV-1a 64 of the header (fingerprint field zeroed) + payload.
std::uint64_t FingerprintFrame(const FrameHeader& header,
                               std::span<const std::uint8_t> payload);

/// Sends one frame (header fingerprint filled in here) within
/// `deadline`. `failpoint_site` names the failpoint consulted per send
/// — "net.frame.send" for client requests, "net.server.send" for server
/// responses, so a chaos test can tear one side's stream without
/// touching the other (the registry is process-global and loopback
/// tests host both sides). Effects: error fails the send, torn cuts the
/// encoded frame at byte offset `arg` and drops the stream — the peer
/// sees a short read at that exact offset (tests/net_fault_test.cc).
Status SendFrame(TcpConn& conn, Frame frame, const Deadline& deadline,
                 const char* failpoint_site = "net.frame.send");

/// Receives one frame within `deadline`, validating version, payload
/// bound (before allocation), and fingerprint. Unavailable on peer
/// loss/deadline (byte offset named), Corruption on a malformed or
/// fingerprint-mismatched frame. Failpoint site "net.frame.recv".
Result<Frame> RecvFrame(TcpConn& conn, const Deadline& deadline);

// ----------------------------------------------------------- messages

/// Client -> server, once per connection. generation_pin = 0 accepts
/// whatever the server currently serves; nonzero demands exactly that
/// generation (the re-pin across reconnect path).
struct HelloRequest {
  std::uint64_t generation_pin = 0;
};

/// The server's identity card: everything the client needs to run the
/// CELF machinery locally (global A_u, frozen seeds) and to place this
/// server in the range order (action_begin/end of ITS shards).
struct HelloResponse {
  std::uint64_t generation = 0;
  NodeId num_users = 0;
  ActionId num_actions = 0;
  ActionId action_begin = 0;
  ActionId action_end = 0;
  std::uint64_t graph_fingerprint = 0;
  std::uint64_t log_fingerprint = 0;
  double truncation_threshold = 0.0;
  std::vector<std::uint32_t> au;
  std::vector<NodeId> frozen_seeds;
};

/// Health probe; carried state lets the prober double as a generation
/// watcher.
struct PongResponse {
  std::uint64_t generation = 0;
  ActionId action_begin = 0;
  ActionId action_end = 0;
  std::uint32_t sessions_active = 0;
};

/// One chained-fold step: fold x's gain terms over this server's shards
/// (ascending range order) into acc.
struct FoldRequest {
  NodeId node = 0;
  double acc = 0.0;
};

struct FoldResponse {
  double acc = 0.0;
};

/// The same fold for many nodes in one round trip (the CELF initial
/// pass): accs[i] is chained for nodes[i] independently, so batching
/// changes round trips, never bits.
struct FoldBatchRequest {
  std::vector<NodeId> nodes;
  std::vector<double> accs;
};

struct FoldBatchResponse {
  std::vector<double> accs;
};

struct CommitRequest {
  NodeId node = 0;
};

struct CommitResponse {
  std::uint32_t session_seeds = 0;
};

/// Status carried over the wire; code round-trips through StatusCode's
/// integer values.
struct ErrorResponse {
  std::uint32_t code = 0;
  std::string message;
};

void EncodeHello(const HelloRequest& msg, BufferWriter* out);
Result<HelloRequest> DecodeHello(BufferReader* in);
void EncodeHelloOk(const HelloResponse& msg, BufferWriter* out);
Result<HelloResponse> DecodeHelloOk(BufferReader* in);
void EncodePong(const PongResponse& msg, BufferWriter* out);
Result<PongResponse> DecodePong(BufferReader* in);
void EncodeFold(const FoldRequest& msg, BufferWriter* out);
Result<FoldRequest> DecodeFold(BufferReader* in);
void EncodeFoldOk(const FoldResponse& msg, BufferWriter* out);
Result<FoldResponse> DecodeFoldOk(BufferReader* in);
void EncodeFoldBatch(const FoldBatchRequest& msg, BufferWriter* out);
Result<FoldBatchRequest> DecodeFoldBatch(BufferReader* in);
void EncodeFoldBatchOk(const FoldBatchResponse& msg, BufferWriter* out);
Result<FoldBatchResponse> DecodeFoldBatchOk(BufferReader* in);
void EncodeCommit(const CommitRequest& msg, BufferWriter* out);
Result<CommitRequest> DecodeCommit(BufferReader* in);
void EncodeCommitOk(const CommitResponse& msg, BufferWriter* out);
Result<CommitResponse> DecodeCommitOk(BufferReader* in);
void EncodeError(const ErrorResponse& msg, BufferWriter* out);
Result<ErrorResponse> DecodeError(BufferReader* in);

/// ErrorResponse <-> Status. Unknown codes decode as Internal (a newer
/// peer), never silently as OK.
ErrorResponse ErrorFromStatus(const Status& status);
Status StatusFromError(const ErrorResponse& error);

}  // namespace influmax

#endif  // INFLUMAX_NET_WIRE_H_
