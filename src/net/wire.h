#ifndef INFLUMAX_NET_WIRE_H_
#define INFLUMAX_NET_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "common/timer.h"
#include "common/types.h"
#include "net/socket.h"
#include "obs/trace.h"

namespace influmax {

/// The shard-serving wire protocol (docs/networking.md): length-prefixed
/// binary frames over TCP, one request frame -> one response frame per
/// RPC, payloads serialized with common/binary_io's BufferWriter/
/// BufferReader (the same typed-section grammar as every on-disk
/// container).
///
/// Frame layout (little-endian, host == wire like the snapshot files):
///   u32 payload_len      bytes after this 32-byte header
///   u8  version          sender's wire version; the receiver accepts
///                        [kWireMinVersion, kWireVersion] so v1 frames
///                        still parse (the flags byte below was v1's
///                        always-zero reserved byte)
///   u8  type             MsgType
///   u8  kernel_mode      GainKernelMode for this request (requests only)
///   u8  flags            kFrameFlag* bits; v2 (docs/tracing.md). A set
///                        kFrameFlagTraced means the payload begins with
///                        a trace-context prefix (requests) or a
///                        span-block prefix (responses)
///   u64 generation       the client's generation pin (0 = none/hello)
///   u64 deadline_us      REMAINING budget at send; kNoDeadlineUs = none.
///                        Remaining-not-absolute because two machines
///                        share no monotonic epoch; the receiver rebuilds
///                        Deadline::AfterUs(deadline_us) at receipt.
///   u64 fingerprint      FNV-1a over the header (this field zeroed) +
///                        payload; a torn or bit-flipped frame fails
///                        closed as Corruption, which the client treats
///                        as a failover trigger.
///
/// Defensive bounds mirror the snapshot readers: payload_len is checked
/// against kMaxFramePayloadBytes BEFORE any allocation, and every
/// variable-length payload field re-validates its own length against
/// both a semantic cap and the bytes actually present.
inline constexpr std::uint8_t kWireVersion = 2;
/// Oldest version this build still accepts. v1 == v2 minus the trace
/// machinery: a v1 frame's flags byte is zero, so it decodes as an
/// untraced v2 frame bit-for-bit.
inline constexpr std::uint8_t kWireMinVersion = 1;
inline constexpr std::size_t kWireHeaderBytes = 32;
inline constexpr std::uint32_t kMaxFramePayloadBytes = 256u << 20;
/// Caps every user/seed vector a frame can carry.
inline constexpr std::uint64_t kMaxWireElements = 1u << 28;
inline constexpr std::uint64_t kMaxWireMessageBytes = 1u << 16;
/// Caps the span count of one wire span block (trace piggyback / fetch).
inline constexpr std::uint64_t kMaxWireSpans = 4096;

/// FrameHeader::flags bits (wire v2, docs/tracing.md).
/// kFrameFlagTraced: the payload carries a trace prefix — a 16-byte
/// trace context on requests, a span block on responses.
/// kFrameFlagTraceOverflow (responses): the span block exceeded the
/// server's piggyback cap; the prefix carries only the clock anchors and
/// the spans wait server-side for a kTraceFetch.
inline constexpr std::uint8_t kFrameFlagTraced = 1u << 0;
inline constexpr std::uint8_t kFrameFlagTraceOverflow = 1u << 1;

enum class MsgType : std::uint8_t {
  kError = 0,
  kHello = 1,
  kHelloOk = 2,
  kPing = 3,
  kPong = 4,
  kFold = 5,
  kFoldOk = 6,
  kFoldBatch = 7,
  kFoldBatchOk = 8,
  kCommit = 9,
  kCommitOk = 10,
  kReset = 11,
  kResetOk = 12,
  // v2: retrieves the span block a kFrameFlagTraceOverflow response left
  // behind. Session-free and generation-free, like kPing.
  kTraceFetch = 13,
  kTraceFetchOk = 14,
};

struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint8_t version = kWireVersion;
  std::uint8_t type = 0;
  std::uint8_t kernel_mode = 0;
  std::uint8_t flags = 0;
  std::uint64_t generation = 0;
  std::uint64_t deadline_us = Deadline::kNoDeadlineUs;
  std::uint64_t fingerprint = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// FNV-1a 64 of the header (fingerprint field zeroed) + payload.
std::uint64_t FingerprintFrame(const FrameHeader& header,
                               std::span<const std::uint8_t> payload);

/// Sends one frame (header fingerprint filled in here) within
/// `deadline`. `failpoint_site` names the failpoint consulted per send
/// — "net.frame.send" for client requests, "net.server.send" for server
/// responses, so a chaos test can tear one side's stream without
/// touching the other (the registry is process-global and loopback
/// tests host both sides). Effects: error fails the send, torn cuts the
/// encoded frame at byte offset `arg` and drops the stream — the peer
/// sees a short read at that exact offset (tests/net_fault_test.cc).
Status SendFrame(TcpConn& conn, Frame frame, const Deadline& deadline,
                 const char* failpoint_site = "net.frame.send");

/// Receives one frame within `deadline`, validating version, payload
/// bound (before allocation), and fingerprint. Unavailable on peer
/// loss/deadline (byte offset named), Corruption on a malformed or
/// fingerprint-mismatched frame. Failpoint site "net.frame.recv".
Result<Frame> RecvFrame(TcpConn& conn, const Deadline& deadline);

// ------------------------------------------------- trace prefixes (v2)

/// The distributed-tracing context a traced request carries as a 16-byte
/// payload prefix (docs/tracing.md): which trace the work belongs to and
/// which client-side span (the net.rpc span) adopts the server's spans.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
};

inline constexpr std::size_t kTraceContextBytes = 16;

/// The spans a traced response carries back, prefixed to its payload (or
/// fetched via kTraceFetch when over the piggyback cap). The two clock
/// anchors are the server's MonotonicNowNs() at request receipt and at
/// response build — the client re-anchors every span onto its own
/// timeline via the RPC midpoint (docs/tracing.md has the math), so an
/// overflowed block still normalizes even before its spans arrive.
/// TraceSpan.rec.origin ships as 0; the client stamps it.
struct SpanBlock {
  std::uint64_t server_recv_ns = 0;
  std::uint64_t server_send_ns = 0;
  std::vector<TraceSpan> spans;
};

/// Span-block <-> typed sections, for the kTraceFetchOk payload.
void EncodeSpanBlock(const SpanBlock& msg, BufferWriter* out);
Result<SpanBlock> DecodeSpanBlock(BufferReader* in);

/// Prefix helpers: Prepend inserts the encoded form at the front of an
/// already-built payload; Strip decodes and removes it, leaving the
/// payload the message codecs expect. Deliberately unconditional (not
/// obs-gated): an INFLUMAX_OBS_OFF peer must still parse a traced
/// frame's payload correctly even though it records nothing.
void PrependTraceContext(const TraceContext& ctx,
                         std::vector<std::uint8_t>* payload);
Result<TraceContext> StripTraceContext(std::vector<std::uint8_t>* payload);
void PrependSpanBlock(const SpanBlock& block,
                      std::vector<std::uint8_t>* payload);
Result<SpanBlock> StripSpanBlock(std::vector<std::uint8_t>* payload);

// ----------------------------------------------------------- messages

/// Client -> server, once per connection. generation_pin = 0 accepts
/// whatever the server currently serves; nonzero demands exactly that
/// generation (the re-pin across reconnect path).
struct HelloRequest {
  std::uint64_t generation_pin = 0;
};

/// The server's identity card: everything the client needs to run the
/// CELF machinery locally (global A_u, frozen seeds) and to place this
/// server in the range order (action_begin/end of ITS shards).
struct HelloResponse {
  std::uint64_t generation = 0;
  NodeId num_users = 0;
  ActionId num_actions = 0;
  ActionId action_begin = 0;
  ActionId action_end = 0;
  std::uint64_t graph_fingerprint = 0;
  std::uint64_t log_fingerprint = 0;
  double truncation_threshold = 0.0;
  std::vector<std::uint32_t> au;
  std::vector<NodeId> frozen_seeds;
};

/// Health probe; carried state lets the prober double as a generation
/// watcher.
struct PongResponse {
  std::uint64_t generation = 0;
  ActionId action_begin = 0;
  ActionId action_end = 0;
  std::uint32_t sessions_active = 0;
  /// Port of this server's /metrics HTTP listener; -1 when disabled.
  /// v2 field (absent from v1 pongs, decoded as -1) — the discovery hook
  /// for fleet metrics federation (docs/observability.md).
  std::int32_t metrics_port = -1;
};

/// One chained-fold step: fold x's gain terms over this server's shards
/// (ascending range order) into acc.
struct FoldRequest {
  NodeId node = 0;
  double acc = 0.0;
};

struct FoldResponse {
  double acc = 0.0;
};

/// The same fold for many nodes in one round trip (the CELF initial
/// pass): accs[i] is chained for nodes[i] independently, so batching
/// changes round trips, never bits.
struct FoldBatchRequest {
  std::vector<NodeId> nodes;
  std::vector<double> accs;
};

struct FoldBatchResponse {
  std::vector<double> accs;
};

struct CommitRequest {
  NodeId node = 0;
};

struct CommitResponse {
  std::uint32_t session_seeds = 0;
};

/// Status carried over the wire; code round-trips through StatusCode's
/// integer values.
struct ErrorResponse {
  std::uint32_t code = 0;
  std::string message;
};

void EncodeHello(const HelloRequest& msg, BufferWriter* out);
Result<HelloRequest> DecodeHello(BufferReader* in);
void EncodeHelloOk(const HelloResponse& msg, BufferWriter* out);
Result<HelloResponse> DecodeHelloOk(BufferReader* in);
void EncodePong(const PongResponse& msg, BufferWriter* out);
Result<PongResponse> DecodePong(BufferReader* in);
void EncodeFold(const FoldRequest& msg, BufferWriter* out);
Result<FoldRequest> DecodeFold(BufferReader* in);
void EncodeFoldOk(const FoldResponse& msg, BufferWriter* out);
Result<FoldResponse> DecodeFoldOk(BufferReader* in);
void EncodeFoldBatch(const FoldBatchRequest& msg, BufferWriter* out);
Result<FoldBatchRequest> DecodeFoldBatch(BufferReader* in);
void EncodeFoldBatchOk(const FoldBatchResponse& msg, BufferWriter* out);
Result<FoldBatchResponse> DecodeFoldBatchOk(BufferReader* in);
void EncodeCommit(const CommitRequest& msg, BufferWriter* out);
Result<CommitRequest> DecodeCommit(BufferReader* in);
void EncodeCommitOk(const CommitResponse& msg, BufferWriter* out);
Result<CommitResponse> DecodeCommitOk(BufferReader* in);
void EncodeError(const ErrorResponse& msg, BufferWriter* out);
Result<ErrorResponse> DecodeError(BufferReader* in);

/// ErrorResponse <-> Status. Unknown codes decode as Internal (a newer
/// peer), never silently as OK.
ErrorResponse ErrorFromStatus(const Status& status);
Status StatusFromError(const ErrorResponse& error);

}  // namespace influmax

#endif  // INFLUMAX_NET_WIRE_H_
