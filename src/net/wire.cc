#include "net/wire.h"

#include <cstring>

#include "common/failpoint.h"

namespace influmax {
namespace {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t FnvMix(std::uint64_t h, const std::uint8_t* data,
                     std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Header <-> its 32 exact wire bytes. memcpy-based, not a struct cast:
/// the struct's padding is compiler territory, the wire's is ours.
void EncodeHeader(const FrameHeader& header,
                  std::uint8_t out[kWireHeaderBytes]) {
  std::memcpy(out + 0, &header.payload_len, 4);
  out[4] = header.version;
  out[5] = header.type;
  out[6] = header.kernel_mode;
  out[7] = header.flags;
  std::memcpy(out + 8, &header.generation, 8);
  std::memcpy(out + 16, &header.deadline_us, 8);
  std::memcpy(out + 24, &header.fingerprint, 8);
}

FrameHeader DecodeHeader(const std::uint8_t in[kWireHeaderBytes]) {
  FrameHeader header;
  std::memcpy(&header.payload_len, in + 0, 4);
  header.version = in[4];
  header.type = in[5];
  header.kernel_mode = in[6];
  header.flags = in[7];
  std::memcpy(&header.generation, in + 8, 8);
  std::memcpy(&header.deadline_us, in + 16, 8);
  std::memcpy(&header.fingerprint, in + 24, 8);
  return header;
}

}  // namespace

std::uint64_t FingerprintFrame(const FrameHeader& header,
                               std::span<const std::uint8_t> payload) {
  FrameHeader unsigned_header = header;
  unsigned_header.fingerprint = 0;
  std::uint8_t bytes[kWireHeaderBytes];
  EncodeHeader(unsigned_header, bytes);
  std::uint64_t h = FnvMix(kFnvOffset, bytes, kWireHeaderBytes);
  return FnvMix(h, payload.data(), payload.size());
}

Status SendFrame(TcpConn& conn, Frame frame, const Deadline& deadline,
                 const char* failpoint_site) {
  frame.header.payload_len = static_cast<std::uint32_t>(frame.payload.size());
  frame.header.version = kWireVersion;
  frame.header.fingerprint = FingerprintFrame(frame.header, frame.payload);

  // One contiguous send: header + payload never interleave with another
  // thread's frame because a connection is single-owner, but a single
  // syscall also gives the torn failpoint one well-defined stream to
  // cut.
  std::vector<std::uint8_t> encoded(kWireHeaderBytes + frame.payload.size());
  EncodeHeader(frame.header, encoded.data());
  if (!frame.payload.empty()) {
    std::memcpy(encoded.data() + kWireHeaderBytes, frame.payload.data(),
                frame.payload.size());
  }

#ifdef INFLUMAX_FAILPOINTS
  if (auto hit = failpoint_internal::CheckSite(failpoint_site)) {
    if (hit->mode == FailpointMode::kTorn ||
        hit->mode == FailpointMode::kTornCrash) {
      // Send the frame's first `arg` bytes, then tear the stream: the
      // peer observes a short read at exactly that offset — the wire
      // equivalent of BinaryWriter's torn-write cut.
      const std::size_t keep =
          hit->arg < encoded.size() ? static_cast<std::size_t>(hit->arg)
                                    : encoded.size();
      (void)conn.SendAll(encoded.data(), keep, deadline);
      failpoint_internal::RecordTornTrip(failpoint_site);
      conn.Abort();
      if (hit->mode == FailpointMode::kTornCrash) {
        failpoint_internal::Crash(failpoint_site);
      }
      return Status::Unavailable(std::string("injected failpoint '") +
                                 failpoint_site +
                                 "': frame torn at byte offset " +
                                 std::to_string(keep));
    }
    if (Status st = failpoint_internal::HitEffect(failpoint_site, *hit);
        !st.ok()) {
      conn.Abort();
      return Status::Unavailable(st.message());
    }
  }
#endif

  return conn.SendAll(encoded.data(), encoded.size(), deadline);
}

Result<Frame> RecvFrame(TcpConn& conn, const Deadline& deadline) {
  INFLUMAX_FAILPOINT("net.frame.recv");

  std::uint8_t header_bytes[kWireHeaderBytes];
  std::size_t got = 0;
  if (Status st = conn.RecvAll(header_bytes, kWireHeaderBytes, deadline, &got);
      !st.ok()) {
    if (st.code() == StatusCode::kUnavailable && got > 0) {
      return Status::Unavailable("torn frame: header cut at byte offset " +
                                 std::to_string(got) + " of " +
                                 std::to_string(kWireHeaderBytes));
    }
    return st;
  }

  Frame frame;
  frame.header = DecodeHeader(header_bytes);
  if (frame.header.version < kWireMinVersion ||
      frame.header.version > kWireVersion) {
    return Status::Corruption(
        "frame version " + std::to_string(frame.header.version) +
        " outside supported [" + std::to_string(kWireMinVersion) + ", " +
        std::to_string(kWireVersion) + "] at byte offset 4");
  }
  // The allocation guard: a hostile/corrupt length prefix is rejected
  // here, before any resize.
  if (frame.header.payload_len > kMaxFramePayloadBytes) {
    return Status::Corruption(
        "frame payload length " + std::to_string(frame.header.payload_len) +
        " at byte offset 0 exceeds limit " +
        std::to_string(kMaxFramePayloadBytes));
  }

  frame.payload.resize(frame.header.payload_len);
  if (frame.header.payload_len > 0) {
    if (Status st = conn.RecvAll(frame.payload.data(),
                                 frame.payload.size(), deadline, &got);
        !st.ok()) {
      if (st.code() == StatusCode::kUnavailable) {
        return Status::Unavailable(
            "torn frame: payload cut at byte offset " +
            std::to_string(kWireHeaderBytes + got) + " of " +
            std::to_string(kWireHeaderBytes + frame.payload.size()));
      }
      return st;
    }
  }

  if (FingerprintFrame(frame.header, frame.payload) !=
      frame.header.fingerprint) {
    return Status::Corruption("frame fingerprint mismatch (" +
                              std::to_string(frame.payload.size()) +
                              "-byte payload)");
  }
  return frame;
}

// -------------------------------------------------- trace prefixes (v2)

void EncodeSpanBlock(const SpanBlock& msg, BufferWriter* out) {
  out->WriteU64(msg.server_recv_ns);
  out->WriteU64(msg.server_send_ns);
  out->WriteU64(msg.spans.size());
  for (const TraceSpan& s : msg.spans) {
    out->WriteU64(s.span_id);
    out->WriteU64(s.parent_span_id);
    out->WriteU32(static_cast<std::uint32_t>(s.rec.name_id) |
                  (static_cast<std::uint32_t>(s.rec.flags) << 16));
    out->WriteU32(s.rec.origin);
    out->WriteU64(s.rec.start_ns);
    out->WriteU64(s.rec.duration_ns);
    out->WriteU64(s.rec.detail);
  }
}

Result<SpanBlock> DecodeSpanBlock(BufferReader* in) {
  SpanBlock msg;
  msg.server_recv_ns = in->ReadU64();
  msg.server_send_ns = in->ReadU64();
  const std::uint64_t count = in->ReadU64();
  INFLUMAX_RETURN_IF_ERROR(in->Finish());
  if (count > kMaxWireSpans) {
    return Status::Corruption("span block of " + std::to_string(count) +
                              " spans exceeds limit " +
                              std::to_string(kMaxWireSpans));
  }
  // 48 bytes of fixed fields per span; bound before the reserve so a
  // hostile count cannot out-allocate the bytes actually present.
  if (count > in->remaining() / 48) {
    return Status::Corruption("span block of " + std::to_string(count) +
                              " spans exceeds the " +
                              std::to_string(in->remaining()) +
                              " bytes remaining");
  }
  msg.spans.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceSpan s;
    s.span_id = in->ReadU64();
    s.parent_span_id = in->ReadU64();
    const std::uint32_t packed = in->ReadU32();
    s.rec.name_id = static_cast<std::uint16_t>(packed & 0xffffu);
    s.rec.flags = static_cast<std::uint16_t>(packed >> 16);
    s.rec.origin = in->ReadU32();
    s.rec.start_ns = in->ReadU64();
    s.rec.duration_ns = in->ReadU64();
    s.rec.detail = in->ReadU64();
    msg.spans.push_back(s);
  }
  INFLUMAX_RETURN_IF_ERROR(in->Finish());
  return msg;
}

void PrependTraceContext(const TraceContext& ctx,
                         std::vector<std::uint8_t>* payload) {
  std::uint8_t prefix[kTraceContextBytes];
  std::memcpy(prefix + 0, &ctx.trace_id, 8);
  std::memcpy(prefix + 8, &ctx.parent_span_id, 8);
  payload->insert(payload->begin(), prefix, prefix + kTraceContextBytes);
}

Result<TraceContext> StripTraceContext(std::vector<std::uint8_t>* payload) {
  if (payload->size() < kTraceContextBytes) {
    return Status::Corruption("traced frame payload of " +
                              std::to_string(payload->size()) +
                              " bytes is shorter than the " +
                              std::to_string(kTraceContextBytes) +
                              "-byte trace context");
  }
  TraceContext ctx;
  std::memcpy(&ctx.trace_id, payload->data() + 0, 8);
  std::memcpy(&ctx.parent_span_id, payload->data() + 8, 8);
  payload->erase(payload->begin(), payload->begin() + kTraceContextBytes);
  return ctx;
}

void PrependSpanBlock(const SpanBlock& block,
                      std::vector<std::uint8_t>* payload) {
  BufferWriter prefix;
  EncodeSpanBlock(block, &prefix);
  payload->insert(payload->begin(), prefix.buffer().begin(),
                  prefix.buffer().end());
}

Result<SpanBlock> StripSpanBlock(std::vector<std::uint8_t>* payload) {
  BufferReader reader(*payload);
  Result<SpanBlock> block = DecodeSpanBlock(&reader);
  if (!block.ok()) return block.status();
  payload->erase(payload->begin(),
                 payload->begin() +
                     static_cast<std::ptrdiff_t>(reader.bytes_read()));
  return block;
}

// ------------------------------------------------------------ messages

void EncodeHello(const HelloRequest& msg, BufferWriter* out) {
  out->WriteU64(msg.generation_pin);
}

Result<HelloRequest> DecodeHello(BufferReader* in) {
  HelloRequest msg;
  msg.generation_pin = in->ReadU64();
  INFLUMAX_RETURN_IF_ERROR(in->Finish());
  return msg;
}

void EncodeHelloOk(const HelloResponse& msg, BufferWriter* out) {
  out->WriteU64(msg.generation);
  out->WriteU32(msg.num_users);
  out->WriteU32(msg.num_actions);
  out->WriteU32(msg.action_begin);
  out->WriteU32(msg.action_end);
  out->WriteU64(msg.graph_fingerprint);
  out->WriteU64(msg.log_fingerprint);
  out->WriteDouble(msg.truncation_threshold);
  out->WriteVector(msg.au);
  out->WriteVector(msg.frozen_seeds);
}

Result<HelloResponse> DecodeHelloOk(BufferReader* in) {
  HelloResponse msg;
  msg.generation = in->ReadU64();
  msg.num_users = in->ReadU32();
  msg.num_actions = in->ReadU32();
  msg.action_begin = in->ReadU32();
  msg.action_end = in->ReadU32();
  msg.graph_fingerprint = in->ReadU64();
  msg.log_fingerprint = in->ReadU64();
  msg.truncation_threshold = in->ReadDouble();
  msg.au = in->ReadVector<std::uint32_t>(kMaxWireElements);
  msg.frozen_seeds = in->ReadVector<NodeId>(kMaxWireElements);
  INFLUMAX_RETURN_IF_ERROR(in->Finish());
  return msg;
}

void EncodePong(const PongResponse& msg, BufferWriter* out) {
  out->WriteU64(msg.generation);
  out->WriteU32(msg.action_begin);
  out->WriteU32(msg.action_end);
  out->WriteU32(msg.sessions_active);
  out->WriteU32(static_cast<std::uint32_t>(msg.metrics_port));
}

Result<PongResponse> DecodePong(BufferReader* in) {
  PongResponse msg;
  msg.generation = in->ReadU64();
  msg.action_begin = in->ReadU32();
  msg.action_end = in->ReadU32();
  msg.sessions_active = in->ReadU32();
  // v2 appended metrics_port; a v1 pong simply ends here, which decodes
  // as "metrics endpoint unknown" rather than an error.
  if (in->remaining() >= 4) {
    msg.metrics_port = static_cast<std::int32_t>(in->ReadU32());
  }
  INFLUMAX_RETURN_IF_ERROR(in->Finish());
  return msg;
}

void EncodeFold(const FoldRequest& msg, BufferWriter* out) {
  out->WriteU32(msg.node);
  out->WriteDouble(msg.acc);
}

Result<FoldRequest> DecodeFold(BufferReader* in) {
  FoldRequest msg;
  msg.node = in->ReadU32();
  msg.acc = in->ReadDouble();
  INFLUMAX_RETURN_IF_ERROR(in->Finish());
  return msg;
}

void EncodeFoldOk(const FoldResponse& msg, BufferWriter* out) {
  out->WriteDouble(msg.acc);
}

Result<FoldResponse> DecodeFoldOk(BufferReader* in) {
  FoldResponse msg;
  msg.acc = in->ReadDouble();
  INFLUMAX_RETURN_IF_ERROR(in->Finish());
  return msg;
}

void EncodeFoldBatch(const FoldBatchRequest& msg, BufferWriter* out) {
  out->WriteVector(msg.nodes);
  out->WriteVector(msg.accs);
}

Result<FoldBatchRequest> DecodeFoldBatch(BufferReader* in) {
  FoldBatchRequest msg;
  msg.nodes = in->ReadVector<NodeId>(kMaxWireElements);
  msg.accs = in->ReadVector<double>(kMaxWireElements);
  INFLUMAX_RETURN_IF_ERROR(in->Finish());
  if (msg.nodes.size() != msg.accs.size()) {
    return Status::Corruption("fold batch: " + std::to_string(msg.nodes.size()) +
                              " nodes vs " + std::to_string(msg.accs.size()) +
                              " accumulators");
  }
  return msg;
}

void EncodeFoldBatchOk(const FoldBatchResponse& msg, BufferWriter* out) {
  out->WriteVector(msg.accs);
}

Result<FoldBatchResponse> DecodeFoldBatchOk(BufferReader* in) {
  FoldBatchResponse msg;
  msg.accs = in->ReadVector<double>(kMaxWireElements);
  INFLUMAX_RETURN_IF_ERROR(in->Finish());
  return msg;
}

void EncodeCommit(const CommitRequest& msg, BufferWriter* out) {
  out->WriteU32(msg.node);
}

Result<CommitRequest> DecodeCommit(BufferReader* in) {
  CommitRequest msg;
  msg.node = in->ReadU32();
  INFLUMAX_RETURN_IF_ERROR(in->Finish());
  return msg;
}

void EncodeCommitOk(const CommitResponse& msg, BufferWriter* out) {
  out->WriteU32(msg.session_seeds);
}

Result<CommitResponse> DecodeCommitOk(BufferReader* in) {
  CommitResponse msg;
  msg.session_seeds = in->ReadU32();
  INFLUMAX_RETURN_IF_ERROR(in->Finish());
  return msg;
}

void EncodeError(const ErrorResponse& msg, BufferWriter* out) {
  out->WriteU32(msg.code);
  out->WriteString(msg.message);
}

Result<ErrorResponse> DecodeError(BufferReader* in) {
  ErrorResponse msg;
  msg.code = in->ReadU32();
  msg.message = in->ReadString(kMaxWireMessageBytes);
  INFLUMAX_RETURN_IF_ERROR(in->Finish());
  return msg;
}

ErrorResponse ErrorFromStatus(const Status& status) {
  return ErrorResponse{static_cast<std::uint32_t>(status.code()),
                       status.message()};
}

Status StatusFromError(const ErrorResponse& error) {
  const std::string& m = error.message;
  switch (static_cast<StatusCode>(error.code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(m);
    case StatusCode::kNotFound:
      return Status::NotFound(m);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(m);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(m);
    case StatusCode::kIoError:
      return Status::IoError(m);
    case StatusCode::kCorruption:
      return Status::Corruption(m);
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(m);
    case StatusCode::kInternal:
      return Status::Internal(m);
    case StatusCode::kUnavailable:
      return Status::Unavailable(m);
  }
  return Status::Internal("unknown wire status code " +
                          std::to_string(error.code) + ": " + m);
}

}  // namespace influmax
