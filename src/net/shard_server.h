#ifndef INFLUMAX_NET_SHARD_SERVER_H_
#define INFLUMAX_NET_SHARD_SERVER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/timer.h"
#include "net/socket.h"
#include "net/wire.h"
#include "shard/generation_manager.h"

namespace influmax {

struct ShardServerOptions {
  std::string dir;          ///< generation directory (docs/sharding.md)
  int port = 0;             ///< RPC port; 0 picks ephemeral (see port())
  int metrics_port = -1;    ///< HTTP /metrics listener; <0 disables
  /// Shard index this process serves, or -1 for the whole generation.
  /// One process per shard is the scale-out deployment; -1 is the
  /// single-process fallback and what the bit-identity tests compare
  /// against.
  int shard = -1;
  std::size_t max_sessions = 64;  ///< concurrent pinned connections
  bool recover = false;           ///< RecoverGenerationDir on open
  /// Span-count cap for the trace block piggybacked on a traced
  /// response (docs/tracing.md); larger blocks stay server-side behind
  /// kFrameFlagTraceOverflow until the client's kTraceFetch. Tests set
  /// this to 0 to force the fetch path on every traced request.
  std::size_t trace_piggyback_spans = 16;
};

/// One shard-serving process behind the wire protocol (net/wire.h,
/// docs/networking.md): owns a GenerationManager over `dir`, accepts
/// connections on a loopback TCP port, and answers the fold/commit/
/// reset vocabulary from a per-connection pinned Session — so a
/// generation swap never moves data under a connected client, exactly
/// the in-process Session contract stretched over a socket.
///
/// Per-connection state: a GenerationManager::Session (the pin) plus
/// one SnapshotQueryEngine per served shard built against the pinned
/// generation with the manifest's GLOBAL A_u and quotient pool — the
/// same construction ShardRouter performs, so a fold step here computes
/// bit-identical terms. Session capacity is enforced before the Session
/// is constructed (the manager CHECK-aborts on slot exhaustion; the
/// server refuses with Unavailable instead).
///
/// Deadlines: every request frame carries its remaining budget; the
/// handler rebuilds the Deadline at receipt and refuses requests that
/// are already (or become, mid-batch) too late with Unavailable — the
/// client treats that as a failover trigger.
///
/// Tracing (docs/tracing.md): a request whose frame carries
/// kFrameFlagTraced has its 16-byte trace context stripped
/// unconditionally (even INFLUMAX_OBS_OFF builds must leave the payload
/// decodable); when observability is compiled in, the handler records
/// request / decode / pin / per-slot-fold / send child spans and ships
/// them back as a span-block prefix on the response — or parks them
/// behind kFrameFlagTraceOverflow for a kTraceFetch when they exceed
/// trace_piggyback_spans.
///
/// Failpoint sites (chaos matrix, tests/net_fault_test.cc):
/// "net.server.request" (delay a request / drop the connection before
/// handling), "net.server.fold_step" (between per-shard fold steps —
/// the mid-fold crash), "net.server.send" (tear the response frame at
/// an exact byte offset).
///
/// Start() returns with the accept loop running; Stop() (also run by
/// the destructor) aborts the listener and every live connection and
/// joins all handler threads. Kill() is Stop() minus any grace — it
/// hard-aborts connections mid-request, the "replica process died"
/// lever the failover tests pull.
class ShardServer {
 public:
  static Result<std::unique_ptr<ShardServer>> Start(
      const ShardServerOptions& options);

  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  int port() const { return port_; }
  int metrics_port() const { return metrics_port_; }

  /// Graceful shutdown; idempotent.
  void Stop();

  /// Abrupt death: aborts every connection mid-whatever and stops.
  void Kill() { Stop(); }

  /// Generation currently served to NEW connections (existing ones stay
  /// pinned). Serialized against Refresh().
  std::uint64_t current_generation();

  /// RefreshFromDisk under the server's publish lock — the rolling-
  /// restart path: an external splitter flips CURRENT, the server picks
  /// it up, clients re-pin on their next reconnect.
  Result<bool> Refresh(const Deadline& deadline = Deadline::Infinite());

  /// The underlying manager, for tests and the serving tool (ingest,
  /// retry policy). Writer-side calls must be serialized with Refresh().
  GenerationManager& manager() { return *manager_; }

  /// Connections currently holding a pinned session.
  std::size_t sessions_active() const;

 private:
  struct Conn;

  ShardServer() = default;

  void AcceptLoop();
  void HandleConn(Conn* conn);
  void MetricsLoop();

  /// Serves one HTTP request on an accepted metrics connection.
  void HandleMetricsConn(TcpConn conn);

  ShardServerOptions options_;
  std::unique_ptr<GenerationManager> manager_;
  TcpListener listener_;
  TcpListener metrics_listener_;
  int port_ = 0;
  int metrics_port_ = -1;

  std::thread accept_thread_;
  std::thread metrics_thread_;

  /// Serializes writer-side manager calls (Refresh) with the cached
  /// ping state reads below.
  std::mutex publish_mu_;
  PongResponse pong_state_;  ///< guarded by publish_mu_

  mutable std::mutex conns_mu_;
  std::list<std::unique_ptr<Conn>> conns_;  ///< guarded by conns_mu_
  bool stopping_ = false;                   ///< guarded by conns_mu_
  std::size_t sessions_active_ = 0;         ///< guarded by conns_mu_
};

}  // namespace influmax

#endif  // INFLUMAX_NET_SHARD_SERVER_H_
