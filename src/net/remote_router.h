#ifndef INFLUMAX_NET_REMOTE_ROUTER_H_
#define INFLUMAX_NET_REMOTE_ROUTER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "common/timer.h"
#include "common/types.h"
#include "core/celf.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "serve/query_engine.h"

namespace influmax {

/// One replica of one range slot.
struct RemoteEndpoint {
  std::string host;
  int port = 0;
};

/// Parses "host:port[|host:port...][,host:port[|...]]...": commas
/// separate range slots IN RANGE ORDER, '|' separates replicas of one
/// slot (tried in order, first healthy wins).
Result<std::vector<std::vector<RemoteEndpoint>>> ParseEndpointSpec(
    const std::string& spec);

struct RemoteRouterOptions {
  /// replica_sets[i] = the replicas serving range slot i; slot order
  /// must match ascending action-range order (validated at Connect from
  /// the hellos' action_begin/end).
  std::vector<std::vector<RemoteEndpoint>> replica_sets;
  /// 0 pins whatever generation the servers currently serve (they must
  /// agree); nonzero demands exactly that generation.
  std::uint64_t generation_pin = 0;
  GainKernelMode kernel_mode = GainKernelMode::kExact;
  /// Per-RPC deadline; 0 = none. Propagated in every frame header and
  /// enforced server-side too.
  std::uint64_t rpc_deadline_ms = 0;
  std::uint64_t connect_timeout_ms = 2000;
  /// Governs reconnect/failover rounds: one "attempt" tries every
  /// replica of the slot once; backoff (deterministic jitter,
  /// deadline-aware) separates rounds.
  RetryPolicy retry;
};

/// Per-replica health probe result (ProbeReplicas).
struct ReplicaHealth {
  std::size_t slot = 0;
  std::size_t replica = 0;
  bool healthy = false;
  std::uint64_t generation = 0;
  std::uint32_t sessions_active = 0;
  /// The replica's HTTP /metrics port from its pong (wire v2); -1 when
  /// the replica runs without a metrics listener or speaks wire v1.
  /// Feeds fleet metrics federation (net/fed_metrics.h).
  int metrics_port = -1;
};

/// ShardRouter over sockets (docs/networking.md): each range slot is a
/// replica set of shard_server processes, and every query chains the
/// per-slot AccumulateGainTerms fold through the slots in range order —
/// the same serial fold ShardRouter runs in-process, so MarginalGain /
/// SpreadOf / CommitSeed / TopKSeeds return bit-identical seeds, gains,
/// and evaluation counts (the chained-fold argument of docs/sharding.md
/// does not care whether a fold step crosses a function call or a
/// socket).
///
/// TopKSeeds runs the engine's own RunCelfTopK verbatim (workers = 1,
/// serial loop) with the initial gain pass answered from one batched
/// fold chain per slot — each node's fold is independent, so batching
/// changes round trips, never bits. The consumption loop's stale
/// re-evaluations go over the wire one fold chain each.
///
/// Robustness contract:
///  * Transport failures (timeout, torn/corrupt frame, connection loss,
///    a replica at capacity) fail over to the next replica of that
///    slot: the connection is re-dialed under RetryPolicy, the session
///    re-pinned to the SAME generation, committed seeds replayed in
///    order, and the failed request re-issued — the chained fold
///    restarts from the failed slot with the accumulator it already
///    had, so FP order is preserved across the failover.
///  * Deterministic errors (InvalidArgument, a generation-pin mismatch)
///    surface to the caller unchanged.
///  * A slot with no live replica fails the query with Unavailable
///    after one bounded retry schedule — fast degradation, never a
///    partial answer: queries return values only when every slot
///    answered.
///  * A failed CommitSeed poisons the session (replicas may disagree on
///    the seed set); every later query returns FailedPrecondition until
///    ResetSession()/Refresh() rebuilds a consistent state.
///
/// Concurrency contract: one router per thread, like ShardRouter.
class RemoteShardRouter {
 public:
  /// Dials every slot, validates the topology (one generation, ranges
  /// contiguous ascending and covering, matching fingerprints), and
  /// pulls the global A_u + frozen seeds from slot 0's hello.
  static Result<std::unique_ptr<RemoteShardRouter>> Connect(
      const RemoteRouterOptions& options);

  ~RemoteShardRouter();

  RemoteShardRouter(const RemoteShardRouter&) = delete;
  RemoteShardRouter& operator=(const RemoteShardRouter&) = delete;

  /// The chained remote fold; bit-identical to ShardRouter::MarginalGain.
  Result<double> MarginalGain(NodeId x);

  /// Commits x on every slot (every replica set), in slot order.
  Status CommitSeed(NodeId x);

  /// sigma_cd of `seeds` committed in order over a fresh session.
  Result<double> SpreadOf(std::span<const NodeId> seeds);

  /// CELF greedy top-k from a fresh session; bit-identical to
  /// ShardRouter::TopKSeeds (which is bit-identical to the monolithic
  /// engine).
  Result<SnapshotSeedSelection> TopKSeeds(
      NodeId k,
      double spread_budget = std::numeric_limits<double>::infinity());

  /// Fresh session on every slot. Always clears local state; a slot
  /// whose reset RPC fails just drops its connection — the reconnect
  /// replays an empty commit list, which IS a fresh session.
  Status ResetSession();

  /// Re-pins the router to whatever generation the servers now serve
  /// (drops the session, like GenerationManager::Session::Refresh).
  /// True when the generation changed.
  Result<bool> Refresh();

  /// Pings every replica of every slot (no session) within the RPC
  /// deadline each.
  std::vector<ReplicaHealth> ProbeReplicas();

  std::uint64_t generation() const { return generation_; }
  NodeId num_users() const { return num_users_; }
  ActionId num_actions() const { return num_actions_; }
  std::size_t num_slots() const { return slots_.size(); }
  std::span<const NodeId> session_seeds() const { return committed_; }

  void set_kernel_mode(GainKernelMode mode) { kernel_mode_ = mode; }
  GainKernelMode kernel_mode() const { return kernel_mode_; }

  /// Attaches a trace collector (docs/tracing.md). While the collector
  /// has an active trace, every RPC carries the trace context in its
  /// frame, records a client-side net.rpc span, and stitches the
  /// server's returned span block under that span — remote timestamps
  /// re-anchored to this process's clock via the RPC midpoint. nullptr
  /// detaches; the router never owns the collector.
  void set_trace_collector(TraceCollector* collector) { trace_ = collector; }

 private:
  struct Slot {
    std::vector<RemoteEndpoint> replicas;
    std::size_t index = 0;   ///< position in slots_ (origin stamping)
    std::size_t active = 0;  ///< index of the replica currently used
    TcpConn conn;
    bool hello_done = false;
    bool ever_connected = false;  ///< gates the reconnects counter
    bool range_known = false;     ///< topology validated once
    ActionId action_begin = 0;
    ActionId action_end = 0;
    HelloResponse hello;  ///< last accepted hello from this slot
  };

  RemoteShardRouter() = default;

  Deadline RpcDeadline() const;

  /// (Re)connects every slot with `pin` (0 = adopt slot 0's current
  /// generation) and validates the topology; Connect and Refresh share
  /// it. Clears the session.
  Status ConnectAll(std::uint64_t pin);

  /// Sends `request` to slot `s` (dialing/re-helloing as needed) and
  /// decodes a response of `ok_type` into `*response`. Implements the
  /// whole robustness ladder: replica cycling, RetryPolicy rounds,
  /// commit replay, fast Unavailable when nothing is live.
  Status CallSlot(std::size_t s, MsgType type, const BufferWriter& request,
                  MsgType ok_type, std::vector<std::uint8_t>* response);

  /// One send+recv on an established connection. Transient-network /
  /// Corruption statuses mean "this replica is suspect" (CallSlot fails
  /// over on them); decoded error frames surface as-is.
  Status DoRequest(Slot& slot, MsgType type, const BufferWriter& request,
                   MsgType ok_type, std::vector<std::uint8_t>* response,
                   const Deadline& deadline);

  /// Dials slot.replicas[slot.active], hellos with the pinned
  /// generation, replays committed seeds. On success the slot is ready
  /// for requests.
  Status ConnectActiveReplica(Slot& slot, const Deadline& deadline);

  void DropConn(Slot& slot);

  /// The chained fold without the seed/range guards (callers own them,
  /// like AccumulateGainTerms).
  Result<double> RemoteGain(NodeId x);

  /// Batched chained fold for `nodes` (already filtered to active
  /// non-seeds) into prefetch_gain_/prefetch_valid_.
  Status PrefetchGains(const std::vector<NodeId>& nodes);

  Status CheckNotPoisoned() const;

  /// Stitches a response's span block into the active trace: remote
  /// start times shifted by the midpoint clock offset, origins stamped
  /// with the slot/replica the block came from, kSpanFlagRemote set.
  void StitchSpanBlock(const Slot& slot, const SpanBlock& block,
                       std::uint64_t t0, std::uint64_t t1,
                       std::uint16_t extra_flags);

  /// Issues kTraceFetch on the slot's connection to pull a parked
  /// oversized span set (kFrameFlagTraceOverflow). Best-effort: a
  /// failed fetch loses detail spans, never the query.
  void FetchOverflowSpans(Slot& slot, std::uint64_t t0, std::uint64_t t1,
                          const Deadline& deadline);

  RemoteRouterOptions options_;
  std::vector<Slot> slots_;
  std::uint64_t generation_ = 0;
  NodeId num_users_ = 0;
  ActionId num_actions_ = 0;
  std::uint64_t graph_fingerprint_ = 0;
  std::uint64_t log_fingerprint_ = 0;
  std::vector<std::uint32_t> au_;
  GainKernelMode kernel_mode_ = GainKernelMode::kExact;
  TraceCollector* trace_ = nullptr;  ///< not owned; may be nullptr

  std::vector<std::uint8_t> is_seed_;  ///< frozen + session seeds [U]
  std::vector<std::uint8_t> is_frozen_;
  std::vector<NodeId> committed_;      ///< session seeds, commit order
  Status poisoned_;                    ///< non-OK after a failed commit

  // TopKSeeds prefetch: prefetch_gain_[x] valid for the seed-set size
  // it was computed at (prefetch_commits_) — exactly the CELF initial
  // pass, fetched in batches instead of one RPC per candidate.
  std::vector<double> prefetch_gain_;
  std::vector<std::uint8_t> prefetch_valid_;
  std::uint64_t prefetch_commits_ = 0;

  // CELF scratch, mirroring ShardRouter's (the shared RunCelfTopK
  // machinery needs caller-owned arrays).
  std::vector<CelfQueueEntry> heap_;
  std::vector<CelfQueueEntry> batch_;
  std::vector<double> memo_gain_;
  std::vector<std::uint64_t> memo_stamp_;
  std::vector<double> gains_;
};

}  // namespace influmax

#endif  // INFLUMAX_NET_REMOTE_ROUTER_H_
