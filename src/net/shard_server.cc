#include "net/shard_server.h"

#include <optional>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "obs/net_metrics.h"
#include "obs/prom_text.h"
#include "serve/query_engine.h"

namespace influmax {

namespace {

/// Outcome of a failpoint site whose error effect means "the process
/// died here": no error frame, just a dropped connection.
enum class SiteOutcome { kContinue, kDropConn };

SiteOutcome EvalDropSite(const char* site) {
#ifdef INFLUMAX_FAILPOINTS
  if (auto hit = failpoint_internal::CheckSite(site)) {
    Status st = failpoint_internal::HitEffect(site, *hit);
    if (!st.ok()) return SiteOutcome::kDropConn;
  }
#else
  (void)site;
#endif
  return SiteOutcome::kContinue;
}

}  // namespace

/// One accepted connection: the socket (close/abort serialized by mu —
/// the handler closes on exit, Stop/Kill aborts from outside), its
/// handler thread, and whether it holds one of the bounded sessions.
struct ShardServer::Conn {
  TcpConn sock;
  std::thread thread;
  std::mutex mu;
  std::atomic<bool> done{false};
};

Result<std::unique_ptr<ShardServer>> ShardServer::Start(
    const ShardServerOptions& options) {
  auto manager_or = GenerationManager::Open(options.dir, options.max_sessions,
                                            options.recover);
  INFLUMAX_RETURN_IF_ERROR(manager_or.status());

  std::unique_ptr<ShardServer> server(new ShardServer());
  server->options_ = options;
  server->manager_ = std::move(manager_or).value();

  {
    // Validate the shard choice against the opened generation and seed
    // the ping state. No session needed: nothing publishes yet.
    const std::uint64_t gen = server->manager_->current_generation();
    GenerationManager::Session probe(*server->manager_);
    const ShardManifest& manifest = probe.shards().manifest;
    const int num_shards = static_cast<int>(manifest.num_shards());
    if (options.shard >= num_shards) {
      return Status::InvalidArgument(
          "--shard=" + std::to_string(options.shard) + " but generation " +
          std::to_string(gen) + " has " + std::to_string(num_shards) +
          " shards");
    }
    server->pong_state_.generation = gen;
    if (options.shard < 0) {
      server->pong_state_.action_begin = 0;
      server->pong_state_.action_end = manifest.num_actions;
    } else {
      server->pong_state_.action_begin = manifest.range_begin[options.shard];
      server->pong_state_.action_end = manifest.range_begin[options.shard + 1];
    }
  }

  auto listener_or = TcpListener::Bind(options.port);
  INFLUMAX_RETURN_IF_ERROR(listener_or.status());
  server->listener_ = std::move(listener_or).value();
  server->port_ = server->listener_.port();

  if (options.metrics_port >= 0) {
    auto metrics_or = TcpListener::Bind(options.metrics_port);
    INFLUMAX_RETURN_IF_ERROR(metrics_or.status());
    server->metrics_listener_ = std::move(metrics_or).value();
    server->metrics_port_ = server->metrics_listener_.port();
    // Advertise the bound port in every pong — the discovery hook fleet
    // metrics federation scrapes by (docs/observability.md).
    server->pong_state_.metrics_port = server->metrics_port_;
    server->metrics_thread_ =
        std::thread([s = server.get()] { s->MetricsLoop(); });
  }

  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

ShardServer::~ShardServer() { Stop(); }

void ShardServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  listener_.Abort();
  metrics_listener_.Abort();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      conn->sock.Abort();
    }
  }
  // conns_ is stable now: the accept loop is joined, handlers only mark
  // done. Join and drop them all.
  for (auto& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  conns_.clear();
  listener_.Close();
  metrics_listener_.Close();
}

std::uint64_t ShardServer::current_generation() {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return manager_->current_generation();
}

Result<bool> ShardServer::Refresh(const Deadline& deadline) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  auto changed = manager_->RefreshFromDisk(deadline);
  INFLUMAX_RETURN_IF_ERROR(changed.status());
  if (*changed) {
    GenerationManager::Session probe(*manager_);
    const ShardManifest& manifest = probe.shards().manifest;
    pong_state_.generation = manifest.generation;
    if (options_.shard < 0) {
      pong_state_.action_begin = 0;
      pong_state_.action_end = manifest.num_actions;
    } else {
      pong_state_.action_begin = manifest.range_begin[options_.shard];
      pong_state_.action_end = manifest.range_begin[options_.shard + 1];
    }
  }
  return changed;
}

std::size_t ShardServer::sessions_active() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return sessions_active_;
}

void ShardServer::AcceptLoop() {
  for (;;) {
    auto conn_or = listener_.Accept(Deadline::Infinite());
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (stopping_) return;
      // Reap finished handlers so a long-lived server's list stays
      // proportional to LIVE connections, not connections ever.
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load()) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      if (conn_or.ok()) {
        auto conn = std::make_unique<Conn>();
        conn->sock = std::move(conn_or).value();
        Conn* raw = conn.get();
        conn->thread = std::thread([this, raw] { HandleConn(raw); });
        conns_.push_back(std::move(conn));
        continue;
      }
    }
    // Accept failed without a stop request: the listener is gone
    // (aborted externally) or the fd broke — either way, stop serving.
    if (!conn_or.ok()) return;
  }
}

void ShardServer::HandleConn(Conn* conn) {
  const NetMetrics& net = GetNetMetrics();
  net.server_connections->Add(1);

  // Declaration order is destruction order in reverse: engines must die
  // before the Session whose pinned generation they view.
  std::optional<GenerationManager::Session> session;
  std::vector<SnapshotQueryEngine> engines;
  bool holds_session_slot = false;
  std::size_t shard_begin = 0;
  std::size_t shard_end = 0;
  NodeId num_users = 0;
  std::uint32_t session_seeds = 0;
  GainKernelMode mode = GainKernelMode::kExact;

  // Tracing state (docs/tracing.md). reply_* is per-request; pending_
  // trace survives across requests until the client's kTraceFetch.
  TraceContext tctx;
  bool reply_traced = false;
  SpanBlock reply_block;
  SpanBlock pending_trace;
  std::uint64_t request_span_id = 0;
  std::uint64_t request_t0 = 0;
  std::uint64_t trace_seq = 0;

  // Server-minted span ids: bit 63 set (client ids are small sequential
  // integers — disjoint by construction) over an FNV mix of the trace
  // context and a per-connection sequence, so two hops of one trace
  // cannot collide.
  const auto server_span_id = [&]() -> std::uint64_t {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ULL;
      }
    };
    mix(tctx.trace_id);
    mix(tctx.parent_span_id);
    mix(++trace_seq);
    return h | (1ull << 63);
  };
  // Closes a child span started at t0 under the current request span.
  const auto trace_child = [&](std::uint16_t name_id, std::uint64_t t0,
                               std::uint64_t detail) {
    if (!reply_traced) return;
    reply_block.spans.push_back(
        TraceSpan{server_span_id(), request_span_id,
                  SpanRecord{name_id, 0, 0, t0, MonotonicNowNs() - t0,
                             detail}});
  };

  const auto send_response = [&](MsgType type, BufferWriter payload,
                                 const Deadline& deadline) -> bool {
    Frame out;
    out.header.type = static_cast<std::uint8_t>(type);
    out.header.generation =
        session.has_value() ? session->generation() : std::uint64_t{0};
    out.header.deadline_us = deadline.remaining_us();
    out.payload = payload.TakeBuffer();
    if (reply_traced) {
      // server.send marks response serialization: the block ships inside
      // the frame it describes, so the socket write itself can never be
      // inside its own span — it is a point marker, not an interval.
      const std::uint64_t now = MonotonicNowNs();
      reply_block.spans.push_back(
          TraceSpan{server_span_id(), request_span_id,
                    SpanRecord{kSpanServerSend, 0, 0, now, 0,
                               out.payload.size()}});
      // The request span itself closes at block build.
      reply_block.spans.push_back(
          TraceSpan{request_span_id, tctx.parent_span_id,
                    SpanRecord{kSpanServerRequest, 0, 0, request_t0,
                               now - request_t0, out.header.type}});
      reply_block.server_send_ns = now;
      out.header.flags |= kFrameFlagTraced;
      if (reply_block.spans.size() > options_.trace_piggyback_spans) {
        // Over the piggyback cap: ship only the clock anchors, park the
        // spans for the client's kTraceFetch.
        out.header.flags |= kFrameFlagTraceOverflow;
        SpanBlock anchors;
        anchors.server_recv_ns = reply_block.server_recv_ns;
        anchors.server_send_ns = reply_block.server_send_ns;
        pending_trace = std::move(reply_block);
        PrependSpanBlock(anchors, &out.payload);
      } else {
        PrependSpanBlock(reply_block, &out.payload);
      }
      reply_block = SpanBlock{};
    }
    return SendFrame(conn->sock, std::move(out), deadline, "net.server.send")
        .ok();
  };
  const auto send_error = [&](const Status& status,
                              const Deadline& deadline) -> bool {
    if constexpr (kObsEnabled) net.server_errors->Increment();
    BufferWriter payload;
    EncodeError(ErrorFromStatus(status), &payload);
    return send_response(MsgType::kError, std::move(payload), deadline);
  };

  for (;;) {
    auto frame_or = RecvFrame(conn->sock, Deadline::Infinite());
    if (!frame_or.ok()) break;  // peer gone, torn stream, or aborted
    Frame& frame = *frame_or;
    const std::uint64_t handle_t0 = kObsEnabled ? MonotonicNowNs() : 0;
    if constexpr (kObsEnabled) net.server_requests->Increment();

    // v2 trace context: stripped UNCONDITIONALLY — an OBS_OFF build must
    // still leave the payload decodable — but spans are only recorded
    // when observability is compiled in.
    reply_traced = false;
    reply_block = SpanBlock{};
    if (frame.header.flags & kFrameFlagTraced) {
      auto ctx_or = StripTraceContext(&frame.payload);
      if (!ctx_or.ok()) {
        if (!send_error(ctx_or.status(), Deadline::AfterMs(1000))) break;
        continue;
      }
      if constexpr (kObsEnabled) {
        tctx = *ctx_or;
        reply_traced = true;
        request_t0 = handle_t0;
        request_span_id = server_span_id();
        reply_block.server_recv_ns = handle_t0;
      }
    }

    // The "server died before answering" site: error drops the
    // connection with no response; delay injects handling latency (what
    // a client-side deadline then trips over).
    if (EvalDropSite("net.server.request") == SiteOutcome::kDropConn) break;

    const Deadline deadline = Deadline::AfterUs(frame.header.deadline_us);
    if (deadline.expired()) {
      if constexpr (kObsEnabled) net.deadline_exceeded->Increment();
      if (!send_error(Status::Unavailable("deadline expired before handling"),
                      Deadline::AfterMs(1000))) {
        break;
      }
      continue;
    }

    if (frame.header.kernel_mode > 1) {
      if (!send_error(Status::InvalidArgument(
                          "unknown kernel mode " +
                          std::to_string(frame.header.kernel_mode)),
                      deadline)) {
        break;
      }
      continue;
    }
    const auto requested_mode =
        static_cast<GainKernelMode>(frame.header.kernel_mode);
    if (session.has_value() && requested_mode != mode) {
      mode = requested_mode;
      for (SnapshotQueryEngine& engine : engines) {
        engine.set_kernel_mode(mode);
      }
    }

    const auto type = static_cast<MsgType>(frame.header.type);

    // Generation pin: every post-hello request must name the pinned
    // generation — a client that reconnected around a swap finds out
    // here, not from silently different bits. (kTraceFetch stays
    // outside this list: retrieving parked spans needs no session.)
    if (type == MsgType::kFold || type == MsgType::kFoldBatch ||
        type == MsgType::kCommit || type == MsgType::kReset) {
      const std::uint64_t pin_t0 = reply_traced ? MonotonicNowNs() : 0;
      if (!session.has_value()) {
        if (!send_error(Status::FailedPrecondition("no session: hello first"),
                        deadline)) {
          break;
        }
        continue;
      }
      if (frame.header.generation != session->generation()) {
        if (!send_error(
                Status::FailedPrecondition(
                    "generation pin " + std::to_string(frame.header.generation) +
                    " != session generation " +
                    std::to_string(session->generation())),
                deadline)) {
          break;
        }
        continue;
      }
      trace_child(kSpanServerPin, pin_t0, frame.header.generation);
    }

    BufferReader reader(frame.payload);
    bool sent = true;
    switch (type) {
      case MsgType::kPing: {
        PongResponse pong;
        {
          std::lock_guard<std::mutex> lock(publish_mu_);
          pong = pong_state_;
        }
        {
          std::lock_guard<std::mutex> lock(conns_mu_);
          pong.sessions_active = static_cast<std::uint32_t>(sessions_active_);
        }
        BufferWriter payload;
        EncodePong(pong, &payload);
        sent = send_response(MsgType::kPong, std::move(payload), deadline);
        break;
      }

      case MsgType::kHello: {
        auto hello_or = DecodeHello(&reader);
        if (!hello_or.ok()) {
          sent = send_error(hello_or.status(), deadline);
          break;
        }
        if (session.has_value()) {
          sent = send_error(
              Status::InvalidArgument("duplicate hello on this connection"),
              deadline);
          break;
        }
        {
          std::lock_guard<std::mutex> lock(conns_mu_);
          if (sessions_active_ >= options_.max_sessions) {
            if constexpr (kObsEnabled) net.server_rejected->Increment();
            sent = send_error(
                Status::Unavailable(
                    "server at session capacity (" +
                    std::to_string(options_.max_sessions) + ")"),
                deadline);
            break;
          }
          ++sessions_active_;
          holds_session_slot = true;
        }
        session.emplace(*manager_);
        if (hello_or->generation_pin != 0 &&
            session->generation() != hello_or->generation_pin) {
          const std::uint64_t have = session->generation();
          session.reset();
          {
            std::lock_guard<std::mutex> lock(conns_mu_);
            --sessions_active_;
            holds_session_slot = false;
          }
          sent = send_error(
              Status::FailedPrecondition(
                  "serves generation " + std::to_string(have) +
                  ", client pinned " +
                  std::to_string(hello_or->generation_pin)),
              deadline);
          break;
        }

        const ShardedSnapshot& shards = session->shards();
        const ShardManifest& manifest = shards.manifest;
        shard_begin = options_.shard < 0
                          ? 0
                          : static_cast<std::size_t>(options_.shard);
        shard_end = options_.shard < 0 ? manifest.num_shards()
                                       : shard_begin + 1;
        num_users = manifest.num_users;
        engines.clear();
        engines.reserve(shard_end - shard_begin);
        for (std::size_t i = shard_begin; i < shard_end; ++i) {
          // The same construction ShardRouter performs: global A_u and
          // the global-au quotient pool, so every fold term matches the
          // in-process router bit for bit.
          engines.emplace_back(shards.views[i], manifest.au,
                               shards.shard_quotient(i));
          if (mode != GainKernelMode::kExact) {
            engines.back().set_kernel_mode(mode);
          }
        }
        session_seeds = 0;

        HelloResponse resp;
        resp.generation = session->generation();
        resp.num_users = manifest.num_users;
        resp.num_actions = manifest.num_actions;
        resp.action_begin = manifest.range_begin[shard_begin];
        resp.action_end = manifest.range_begin[shard_end];
        resp.graph_fingerprint = manifest.graph_fingerprint;
        resp.log_fingerprint = manifest.log_fingerprint;
        resp.truncation_threshold = manifest.truncation_threshold;
        resp.au = manifest.au;
        const auto frozen = shards.views[shard_begin].seeds();
        resp.frozen_seeds.assign(frozen.begin(), frozen.end());
        BufferWriter payload;
        EncodeHelloOk(resp, &payload);
        sent = send_response(MsgType::kHelloOk, std::move(payload), deadline);
        break;
      }

      case MsgType::kFold: {
        const std::uint64_t decode_t0 = reply_traced ? MonotonicNowNs() : 0;
        auto fold_or = DecodeFold(&reader);
        if (!fold_or.ok()) {
          sent = send_error(fold_or.status(), deadline);
          break;
        }
        trace_child(kSpanServerDecode, decode_t0, frame.payload.size());
        if (fold_or->node >= num_users) {
          sent = send_error(Status::InvalidArgument(
                                "node " + std::to_string(fold_or->node) +
                                " >= num_users " + std::to_string(num_users)),
                            deadline);
          break;
        }
        double acc = fold_or->acc;
        bool dropped = false;
        std::size_t slot_index = shard_begin;
        for (SnapshotQueryEngine& engine : engines) {
          // The mid-fold crash site: a multi-shard server dying between
          // two shards' fold segments.
          if (EvalDropSite("net.server.fold_step") == SiteOutcome::kDropConn) {
            dropped = true;
            break;
          }
          const std::uint64_t fold_t0 = reply_traced ? MonotonicNowNs() : 0;
          acc = engine.AccumulateGainTerms(fold_or->node, acc);
          trace_child(kSpanServerFold, fold_t0, slot_index++);
        }
        if (dropped) {
          sent = false;
          break;
        }
        BufferWriter payload;
        EncodeFoldOk(FoldResponse{acc}, &payload);
        sent = send_response(MsgType::kFoldOk, std::move(payload), deadline);
        break;
      }

      case MsgType::kFoldBatch: {
        const std::uint64_t decode_t0 = reply_traced ? MonotonicNowNs() : 0;
        auto batch_or = DecodeFoldBatch(&reader);
        if (!batch_or.ok()) {
          sent = send_error(batch_or.status(), deadline);
          break;
        }
        trace_child(kSpanServerDecode, decode_t0, frame.payload.size());
        FoldBatchResponse resp;
        resp.accs = std::move(batch_or->accs);
        bool dropped = false;
        bool too_late = false;
        // Per-engine fold attribution for traced batches: one span per
        // engine covering its slice of the whole batch (per-node spans
        // would blow the span cap on a CELF prefetch batch).
        std::vector<std::uint64_t> fold_start(
            reply_traced ? engines.size() : 0, 0);
        std::vector<std::uint64_t> fold_ns(reply_traced ? engines.size() : 0,
                                           0);
        for (std::size_t i = 0; i < batch_or->nodes.size(); ++i) {
          // Server-side deadline enforcement inside the one genuinely
          // long request: a late batch stops folding and reports, it
          // does not burn the budget to the end.
          if ((i & 255u) == 255u && deadline.expired()) {
            too_late = true;
            break;
          }
          const NodeId node = batch_or->nodes[i];
          if (node >= num_users) {
            sent = send_error(
                Status::InvalidArgument("node " + std::to_string(node) +
                                        " >= num_users " +
                                        std::to_string(num_users)),
                deadline);
            dropped = true;  // response already sent; skip the OK path
            break;
          }
          for (std::size_t e = 0; e < engines.size(); ++e) {
            if (EvalDropSite("net.server.fold_step") ==
                SiteOutcome::kDropConn) {
              sent = false;
              dropped = true;
              break;
            }
            const std::uint64_t fold_t0 =
                reply_traced ? MonotonicNowNs() : 0;
            resp.accs[i] = engines[e].AccumulateGainTerms(node, resp.accs[i]);
            if (reply_traced) {
              if (fold_start[e] == 0) fold_start[e] = fold_t0;
              fold_ns[e] += MonotonicNowNs() - fold_t0;
            }
          }
          if (dropped) break;
        }
        if (reply_traced) {
          for (std::size_t e = 0; e < engines.size(); ++e) {
            if (fold_start[e] == 0) continue;
            reply_block.spans.push_back(
                TraceSpan{server_span_id(), request_span_id,
                          SpanRecord{kSpanServerFold, 0, 0, fold_start[e],
                                     fold_ns[e], shard_begin + e}});
          }
        }
        if (dropped) break;
        if (too_late) {
          if constexpr (kObsEnabled) net.deadline_exceeded->Increment();
          sent = send_error(
              Status::Unavailable("deadline expired mid-batch"),
              Deadline::AfterMs(1000));
          break;
        }
        BufferWriter payload;
        EncodeFoldBatchOk(resp, &payload);
        sent =
            send_response(MsgType::kFoldBatchOk, std::move(payload), deadline);
        break;
      }

      case MsgType::kCommit: {
        const std::uint64_t decode_t0 = reply_traced ? MonotonicNowNs() : 0;
        auto commit_or = DecodeCommit(&reader);
        if (!commit_or.ok()) {
          sent = send_error(commit_or.status(), deadline);
          break;
        }
        trace_child(kSpanServerDecode, decode_t0, frame.payload.size());
        if (commit_or->node >= num_users) {
          sent = send_error(
              Status::InvalidArgument("node " + std::to_string(commit_or->node) +
                                      " >= num_users " +
                                      std::to_string(num_users)),
              deadline);
          break;
        }
        for (SnapshotQueryEngine& engine : engines) {
          engine.CommitSeed(commit_or->node);
        }
        ++session_seeds;
        BufferWriter payload;
        EncodeCommitOk(CommitResponse{session_seeds}, &payload);
        sent = send_response(MsgType::kCommitOk, std::move(payload), deadline);
        break;
      }

      case MsgType::kReset: {
        for (SnapshotQueryEngine& engine : engines) {
          engine.ResetSession();
        }
        session_seeds = 0;
        sent = send_response(MsgType::kResetOk, BufferWriter(), deadline);
        break;
      }

      case MsgType::kTraceFetch: {
        // Hands over the span block a kFrameFlagTraceOverflow response
        // parked. The fetch round-trip is bookkeeping, not query work —
        // it is never traced itself.
        reply_traced = false;
        BufferWriter payload;
        EncodeSpanBlock(pending_trace, &payload);
        pending_trace = SpanBlock{};
        sent =
            send_response(MsgType::kTraceFetchOk, std::move(payload), deadline);
        break;
      }

      default:
        sent = send_error(
            Status::InvalidArgument("unexpected message type " +
                                    std::to_string(frame.header.type)),
            deadline);
        break;
    }
    if constexpr (kObsEnabled) {
      net.server_latency->Record(MonotonicNowNs() - handle_t0);
    }
    if (!sent) break;
  }

  if (holds_session_slot) {
    std::lock_guard<std::mutex> lock(conns_mu_);
    --sessions_active_;
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->sock.Close();
  }
  net.server_connections->Add(-1);
  conn->done.store(true);
}

void ShardServer::MetricsLoop() {
  for (;;) {
    auto conn_or = metrics_listener_.Accept(Deadline::Infinite());
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (stopping_) return;
    }
    if (!conn_or.ok()) return;
    // Serial handling: /metrics scrapes are rare and small, and a
    // single-threaded loop cannot be wedged open by a slow client
    // thanks to the per-request deadline below.
    HandleMetricsConn(std::move(conn_or).value());
  }
}

void ShardServer::HandleMetricsConn(TcpConn conn) {
  const Deadline deadline = Deadline::AfterMs(2000);
  std::string request;
  char buf[1024];
  while (request.size() < 4096 &&
         request.find("\r\n\r\n") == std::string::npos) {
    auto n = conn.RecvSome(buf, sizeof(buf), deadline);
    if (!n.ok() || *n == 0) break;
    request.append(buf, *n);
  }

  std::string path = "/";
  if (request.rfind("GET ", 0) == 0) {
    const std::size_t end = request.find(' ', 4);
    if (end != std::string::npos) path = request.substr(4, end - 4);
  }

  std::string status_line = "HTTP/1.0 200 OK";
  std::string body;
  if (path == "/metrics") {
    body = PrometheusText(MetricsRegistry::Global().Scrape());
  } else if (path == "/healthz") {
    std::lock_guard<std::mutex> lock(publish_mu_);
    body = "ok generation=" + std::to_string(pong_state_.generation) + "\n";
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body = "not found\n";
  }
  const std::string response = status_line +
                               "\r\nContent-Type: text/plain; version=0.0.4" +
                               "\r\nContent-Length: " +
                               std::to_string(body.size()) +
                               "\r\nConnection: close\r\n\r\n" + body;
  (void)conn.SendAll(response.data(), response.size(), deadline);
}

}  // namespace influmax
