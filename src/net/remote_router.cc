#include "net/remote_router.h"

#include <algorithm>
#include <utility>

#include "obs/net_metrics.h"
#include "obs/span_names.h"

namespace influmax {
namespace {

/// FoldBatch chunk: 12 wire bytes per node keeps a chunk far under
/// kMaxFramePayloadBytes while amortizing the round trip over the whole
/// CELF initial pass.
constexpr std::size_t kFoldBatchChunk = std::size_t{1} << 16;

/// Failures that justify trying another replica: the transient-network
/// class (refused/reset/timed-out/closed, a replica at capacity or past
/// the deadline) plus Corruption — a torn or fingerprint-mismatched
/// frame condemns this replica's STREAM, not the request, so the same
/// request is deterministic-retryable elsewhere.
bool IsFailoverTrigger(const Status& status) {
  return IsTransientError(status) ||
         status.code() == StatusCode::kCorruption;
}

}  // namespace

Result<std::vector<std::vector<RemoteEndpoint>>> ParseEndpointSpec(
    const std::string& spec) {
  std::vector<std::vector<RemoteEndpoint>> slots;
  std::size_t slot_begin = 0;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i != spec.size() && spec[i] != ',') continue;
    const std::string slot_str = spec.substr(slot_begin, i - slot_begin);
    slot_begin = i + 1;
    std::vector<RemoteEndpoint> replicas;
    std::size_t ep_begin = 0;
    for (std::size_t j = 0; j <= slot_str.size(); ++j) {
      if (j != slot_str.size() && slot_str[j] != '|') continue;
      const std::string ep = slot_str.substr(ep_begin, j - ep_begin);
      ep_begin = j + 1;
      const std::size_t colon = ep.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == ep.size()) {
        return Status::InvalidArgument(
            "endpoint spec: '" + ep + "' is not host:port (slots separated "
            "by ',', replicas of one slot by '|')");
      }
      int port = 0;
      for (std::size_t k = colon + 1; k < ep.size(); ++k) {
        if (ep[k] < '0' || ep[k] > '9' || port > 65535) {
          return Status::InvalidArgument("endpoint spec: bad port in '" +
                                         ep + "'");
        }
        port = port * 10 + (ep[k] - '0');
      }
      if (port < 1 || port > 65535) {
        return Status::InvalidArgument("endpoint spec: bad port in '" + ep +
                                       "'");
      }
      replicas.push_back(RemoteEndpoint{ep.substr(0, colon), port});
    }
    if (replicas.empty()) {
      return Status::InvalidArgument("endpoint spec: empty slot in '" + spec +
                                     "'");
    }
    slots.push_back(std::move(replicas));
  }
  if (slots.empty()) {
    return Status::InvalidArgument("endpoint spec: no endpoints in '" + spec +
                                   "'");
  }
  return slots;
}

Result<std::unique_ptr<RemoteShardRouter>> RemoteShardRouter::Connect(
    const RemoteRouterOptions& options) {
  if (options.replica_sets.empty()) {
    return Status::InvalidArgument("remote router: no replica sets");
  }
  for (std::size_t s = 0; s < options.replica_sets.size(); ++s) {
    if (options.replica_sets[s].empty()) {
      return Status::InvalidArgument("remote router: slot " +
                                     std::to_string(s) + " has no replicas");
    }
  }
  std::unique_ptr<RemoteShardRouter> router(new RemoteShardRouter());
  router->options_ = options;
  router->kernel_mode_ = options.kernel_mode;
  router->slots_.resize(options.replica_sets.size());
  for (std::size_t s = 0; s < options.replica_sets.size(); ++s) {
    router->slots_[s].replicas = options.replica_sets[s];
    router->slots_[s].index = s;
  }
  INFLUMAX_RETURN_IF_ERROR(router->ConnectAll(options.generation_pin));
  return router;
}

RemoteShardRouter::~RemoteShardRouter() {
  for (Slot& slot : slots_) DropConn(slot);
}

Deadline RemoteShardRouter::RpcDeadline() const {
  return options_.rpc_deadline_ms == 0
             ? Deadline::Infinite()
             : Deadline::AfterMs(options_.rpc_deadline_ms);
}

Status RemoteShardRouter::ConnectAll(std::uint64_t pin) {
  generation_ = pin;
  num_users_ = 0;
  num_actions_ = 0;
  committed_.clear();
  poisoned_ = Status::OK();
  for (Slot& slot : slots_) {
    DropConn(slot);
    slot.range_known = false;
  }
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    // A ping through the full CallSlot ladder: connects (hello + empty
    // replay) with replica failover and retry, so a dead first replica
    // never blocks startup.
    BufferWriter empty;
    std::vector<std::uint8_t> payload;
    INFLUMAX_RETURN_IF_ERROR(
        CallSlot(s, MsgType::kPing, empty, MsgType::kPong, &payload));
    if (s == 0) {
      // Adopt slot 0's identity; every other slot (and every later
      // reconnect) is validated against it.
      const HelloResponse& h = slots_[0].hello;
      generation_ = h.generation;
      num_users_ = h.num_users;
      num_actions_ = h.num_actions;
      graph_fingerprint_ = h.graph_fingerprint;
      log_fingerprint_ = h.log_fingerprint;
      au_ = h.au;
      if (au_.size() != num_users_) {
        return Status::Corruption(
            "hello A_u has " + std::to_string(au_.size()) + " entries for " +
            std::to_string(num_users_) + " users");
      }
      is_frozen_.assign(num_users_, 0);
      for (NodeId x : h.frozen_seeds) {
        if (x >= num_users_) {
          return Status::Corruption("hello frozen seed " + std::to_string(x) +
                                    " out of range");
        }
        is_frozen_[x] = 1;
      }
      is_seed_ = is_frozen_;
      memo_gain_.assign(num_users_, 0.0);
      memo_stamp_.assign(num_users_, 0);
      prefetch_gain_.assign(num_users_, 0.0);
      prefetch_valid_.assign(num_users_, 0);
    }
  }

  // Topology: one generation/dataset, ranges contiguous ascending and
  // covering [0, num_actions) — the precondition of the chained fold.
  ActionId expect = 0;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const HelloResponse& h = slots_[s].hello;
    if (h.generation != generation_ || h.num_users != num_users_ ||
        h.num_actions != num_actions_ ||
        h.graph_fingerprint != graph_fingerprint_ ||
        h.log_fingerprint != log_fingerprint_) {
      return Status::FailedPrecondition(
          "slot " + std::to_string(s) + " serves generation " +
          std::to_string(h.generation) + " of a different dataset than slot "
          "0 (generation " + std::to_string(generation_) + ")");
    }
    if (h.action_begin != expect || h.action_end < h.action_begin) {
      return Status::FailedPrecondition(
          "slot " + std::to_string(s) + " covers actions [" +
          std::to_string(h.action_begin) + ", " +
          std::to_string(h.action_end) + ") but the fold chain needs it to "
          "start at " + std::to_string(expect) +
          " (slots must be listed in ascending range order)");
    }
    expect = h.action_end;
    slots_[s].range_known = true;
  }
  if (expect != num_actions_) {
    return Status::FailedPrecondition(
        "slots cover actions [0, " + std::to_string(expect) + ") of " +
        std::to_string(num_actions_) + " — a range slot is missing");
  }
  return Status::OK();
}

void RemoteShardRouter::DropConn(Slot& slot) {
  if (slot.conn.valid()) {
    slot.conn.Close();
    GetNetMetrics().connections->Add(-1);
  }
  slot.hello_done = false;
}

Status RemoteShardRouter::ConnectActiveReplica(Slot& slot,
                                               const Deadline& deadline) {
  const NetMetrics& nm = GetNetMetrics();
  DropConn(slot);
  const RemoteEndpoint& ep = slot.replicas[slot.active];
  Deadline dial = options_.connect_timeout_ms == 0
                      ? deadline
                      : Deadline::AfterMs(options_.connect_timeout_ms);
  if (deadline.remaining_us() < dial.remaining_us()) dial = deadline;
  Result<TcpConn> conn = TcpConn::Connect(ep.host, ep.port, dial);
  if (!conn.ok()) return conn.status();
  slot.conn = std::move(conn).value();
  nm.connections->Add(1);

  // Hello pins the router's generation (0 on first contact adopts the
  // server's current one); the server refuses a pin it cannot serve, so
  // a failover never silently lands on a stale replica.
  BufferWriter hello_req;
  EncodeHello(HelloRequest{generation_}, &hello_req);
  std::vector<std::uint8_t> payload;
  INFLUMAX_RETURN_IF_ERROR(DoRequest(slot, MsgType::kHello, hello_req,
                                     MsgType::kHelloOk, &payload, deadline));
  BufferReader reader(payload);
  Result<HelloResponse> hello = DecodeHelloOk(&reader);
  if (!hello.ok()) return hello.status();
  if (generation_ != 0 && hello->generation != generation_) {
    return Status::FailedPrecondition(
        "replica serves generation " + std::to_string(hello->generation) +
        ", session is pinned to " + std::to_string(generation_));
  }
  if (num_users_ != 0 &&
      (hello->num_users != num_users_ || hello->num_actions != num_actions_ ||
       hello->graph_fingerprint != graph_fingerprint_ ||
       hello->log_fingerprint != log_fingerprint_)) {
    return Status::FailedPrecondition(
        "replica serves a different dataset than the session was built "
        "against");
  }
  if (slot.range_known && (hello->action_begin != slot.action_begin ||
                           hello->action_end != slot.action_end)) {
    return Status::FailedPrecondition(
        "replica covers actions [" + std::to_string(hello->action_begin) +
        ", " + std::to_string(hello->action_end) + ") but its slot owns [" +
        std::to_string(slot.action_begin) + ", " +
        std::to_string(slot.action_end) + ")");
  }
  slot.hello = std::move(hello).value();
  slot.action_begin = slot.hello.action_begin;
  slot.action_end = slot.hello.action_end;
  slot.hello_done = true;

  // The server-side session behind this connection is brand new, so the
  // client's committed seeds are replayed in commit order — an exact
  // rebuild (commits are deterministic state transitions), which is why
  // failover can resume a half-done query bit-identically.
  for (NodeId x : committed_) {
    BufferWriter commit_req;
    EncodeCommit(CommitRequest{x}, &commit_req);
    std::vector<std::uint8_t> commit_payload;
    if (Status st = DoRequest(slot, MsgType::kCommit, commit_req,
                              MsgType::kCommitOk, &commit_payload, deadline);
        !st.ok()) {
      slot.hello_done = false;
      return st;
    }
    nm.commit_replays->Increment();
  }
  if (slot.ever_connected) nm.reconnects->Increment();
  slot.ever_connected = true;
  return Status::OK();
}

Status RemoteShardRouter::DoRequest(Slot& slot, MsgType type,
                                    const BufferWriter& request,
                                    MsgType ok_type,
                                    std::vector<std::uint8_t>* response,
                                    const Deadline& deadline) {
  const NetMetrics& nm = GetNetMetrics();
  nm.rpc_count->Increment();
  const bool traced = trace_ != nullptr && trace_->active();
  std::uint64_t rpc_span_id = 0;
  const std::uint64_t t0 = MonotonicNowNs();
  Frame frame;
  frame.header.type = static_cast<std::uint8_t>(type);
  frame.header.kernel_mode = static_cast<std::uint8_t>(kernel_mode_);
  frame.header.generation = generation_;
  frame.header.deadline_us = deadline.remaining_us();
  frame.payload = request.buffer();
  if (traced) {
    // The net.rpc span adopts the server's span subtree: its id rides in
    // the trace-context prefix and comes back as the server.request
    // span's parent (docs/tracing.md).
    rpc_span_id = trace_->NextSpanId();
    frame.header.flags |= kFrameFlagTraced;
    PrependTraceContext(TraceContext{trace_->trace_id(), rpc_span_id},
                        &frame.payload);
  }
  INFLUMAX_RETURN_IF_ERROR(SendFrame(slot.conn, std::move(frame), deadline));
  Result<Frame> resp = RecvFrame(slot.conn, deadline);
  if (!resp.ok()) return resp.status();
  const std::uint64_t t1 = MonotonicNowNs();
  nm.rpc_latency->Record(t1 - t0);

  // A traced response's span-block prefix is stripped whatever the
  // local trace state — error frames carry one too, and the message
  // codecs below must see a bare payload.
  SpanBlock block;
  bool have_block = false;
  if ((resp->header.flags & kFrameFlagTraced) != 0) {
    Result<SpanBlock> stripped = StripSpanBlock(&resp->payload);
    if (!stripped.ok()) return stripped.status();
    block = std::move(stripped).value();
    have_block = true;
  }
  if (traced) {
    SpanRecord rpc_rec{};
    rpc_rec.name_id = kSpanNetRpc;
    rpc_rec.start_ns = t0;
    rpc_rec.duration_ns = t1 - t0;
    rpc_rec.detail = static_cast<std::uint64_t>(
        static_cast<std::uint8_t>(type));
    trace_->AddSpan(rpc_span_id, trace_->root_span_id(), rpc_rec);
    if (have_block) {
      StitchSpanBlock(slot, block, t0, t1, /*extra_flags=*/0);
      if ((resp->header.flags & kFrameFlagTraceOverflow) != 0) {
        FetchOverflowSpans(slot, t0, t1, deadline);
      }
    }
  }
  if (resp->header.type == static_cast<std::uint8_t>(MsgType::kError)) {
    BufferReader reader(resp->payload);
    Result<ErrorResponse> error = DecodeError(&reader);
    if (!error.ok()) return error.status();
    Status st = StatusFromError(*error);
    // An OK-coded error frame is a protocol violation, not a success.
    return st.ok() ? Status::Corruption("error frame carrying OK status")
                   : st;
  }
  if (resp->header.type != static_cast<std::uint8_t>(ok_type)) {
    return Status::Corruption(
        "unexpected response type " + std::to_string(resp->header.type) +
        " to request type " +
        std::to_string(static_cast<int>(static_cast<std::uint8_t>(type))));
  }
  if (response != nullptr) *response = std::move(resp->payload);
  return Status::OK();
}

void RemoteShardRouter::StitchSpanBlock(const Slot& slot,
                                        const SpanBlock& block,
                                        std::uint64_t t0, std::uint64_t t1,
                                        std::uint16_t extra_flags) {
  // Clock re-anchoring (docs/tracing.md): the two machines share no
  // monotonic epoch, but the RPC's client midpoint and the server's
  // handling midpoint name (approximately) the same instant — their
  // difference maps server timestamps onto this process's timeline,
  // symmetric-latency error bounded by half the network round trip.
  const std::int64_t offset =
      static_cast<std::int64_t>((t0 + t1) / 2) -
      static_cast<std::int64_t>(
          (block.server_recv_ns + block.server_send_ns) / 2);
  const std::uint32_t origin =
      (static_cast<std::uint32_t>(slot.index + 1) << 8) |
      static_cast<std::uint32_t>(slot.active & 0xff);
  for (const TraceSpan& span : block.spans) {
    SpanRecord rec = span.rec;
    rec.flags = static_cast<std::uint16_t>(rec.flags | kSpanFlagRemote |
                                           extra_flags);
    rec.origin = origin;
    rec.start_ns = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(rec.start_ns) + offset);
    trace_->AddSpan(span.span_id, span.parent_span_id, rec);
  }
}

void RemoteShardRouter::FetchOverflowSpans(Slot& slot, std::uint64_t t0,
                                           std::uint64_t t1,
                                           const Deadline& deadline) {
  const std::uint64_t f0 = MonotonicNowNs();
  Frame frame;
  frame.header.type = static_cast<std::uint8_t>(MsgType::kTraceFetch);
  frame.header.deadline_us = deadline.remaining_us();
  // Best-effort throughout: a failed fetch loses detail spans, never the
  // query. The stream may be desynced mid-fetch though, so any failure
  // drops the connection — the next request re-dials and replays commits
  // like any failover.
  if (!SendFrame(slot.conn, std::move(frame), deadline).ok()) {
    DropConn(slot);
    return;
  }
  Result<Frame> resp = RecvFrame(slot.conn, deadline);
  if (!resp.ok() || resp->header.type !=
                        static_cast<std::uint8_t>(MsgType::kTraceFetchOk)) {
    DropConn(slot);
    return;
  }
  BufferReader reader(resp->payload);
  Result<SpanBlock> fetched = DecodeSpanBlock(&reader);
  if (!fetched.ok()) return;
  // The parked block kept the ORIGINAL request's clock anchors, so the
  // original envelope's midpoint offset still applies.
  StitchSpanBlock(slot, *fetched, t0, t1, kSpanFlagFetched);
  SpanRecord rec{};
  rec.name_id = kSpanNetTraceFetch;
  rec.start_ns = f0;
  rec.duration_ns = MonotonicNowNs() - f0;
  rec.detail = fetched->spans.size();
  trace_->AddSpan(trace_->NextSpanId(), trace_->root_span_id(), rec);
  trace_->NoteFetch();
}

Status RemoteShardRouter::CallSlot(std::size_t s, MsgType type,
                                   const BufferWriter& request,
                                   MsgType ok_type,
                                   std::vector<std::uint8_t>* response) {
  Slot& slot = slots_[s];
  const NetMetrics& nm = GetNetMetrics();
  const Deadline deadline = RpcDeadline();
  // RunWithRetry's counter bumps on EVERY attempt; net.rpc.retries
  // should count only the re-attempts, so count rounds ourselves.
  std::size_t rounds = 0;
  const auto attempt = [&]() -> Status {
    if (++rounds > 1) nm.rpc_retries->Increment();
    // One round: each replica of the slot gets one chance, starting from
    // the active one. Deterministic application errors return
    // immediately; transport failures advance the replica cursor.
    Status last = Status::Unavailable("slot " + std::to_string(s) +
                                      ": no replica answered");
    for (std::size_t tried = 0; tried < slot.replicas.size(); ++tried) {
      Status st;
      if (!slot.hello_done) st = ConnectActiveReplica(slot, deadline);
      if (st.ok()) {
        st = DoRequest(slot, type, request, ok_type, response, deadline);
        if (st.ok()) return st;
        if (!IsFailoverTrigger(st)) return st;
      }
      last = st;
      DropConn(slot);
      if (slot.replicas.size() > 1) {
        if (trace_ != nullptr && trace_->active()) {
          // Point span naming the replica being abandoned, so a stitched
          // trace shows WHERE the fold chain switched replicas.
          SpanRecord rec{};
          rec.name_id = kSpanNetFailover;
          rec.flags = kSpanFlagFailover;
          rec.origin = (static_cast<std::uint32_t>(slot.index + 1) << 8) |
                       static_cast<std::uint32_t>(slot.active & 0xff);
          rec.start_ns = MonotonicNowNs();
          rec.detail = s;
          trace_->AddSpan(trace_->NextSpanId(), trace_->root_span_id(), rec);
          trace_->NoteFailover();
        }
        slot.active = (slot.active + 1) % slot.replicas.size();
        nm.failovers->Increment();
      }
      if (deadline.expired()) break;
    }
    return last;
  };
  Status st = RunWithRetry(options_.retry, attempt, nullptr, {}, deadline);
  if (!st.ok()) nm.rpc_errors->Increment();
  return st;
}

Status RemoteShardRouter::CheckNotPoisoned() const {
  if (poisoned_.ok()) return Status::OK();
  return Status::FailedPrecondition(
      "session poisoned by a failed commit (" + poisoned_.message() +
      "); ResetSession() or Refresh() to recover");
}

Result<double> RemoteShardRouter::RemoteGain(NodeId x) {
  // The gain-merge fold of docs/sharding.md stretched over sockets:
  // chaining the accumulator through the slots in range order replays
  // the monolithic engine's exact floating-point addition sequence. A
  // failover inside CallSlot re-issues only the failed slot's step with
  // the accumulator it already had — completed prefixes are never
  // recomputed, so the sequence survives the failover unchanged.
  double acc = 0.0;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    BufferWriter request;
    EncodeFold(FoldRequest{x, acc}, &request);
    std::vector<std::uint8_t> payload;
    INFLUMAX_RETURN_IF_ERROR(
        CallSlot(s, MsgType::kFold, request, MsgType::kFoldOk, &payload));
    BufferReader reader(payload);
    Result<FoldResponse> resp = DecodeFoldOk(&reader);
    if (!resp.ok()) return resp.status();
    acc = resp->acc;
  }
  return acc;
}

Result<double> RemoteShardRouter::MarginalGain(NodeId x) {
  INFLUMAX_RETURN_IF_ERROR(CheckNotPoisoned());
  // The router guard, verbatim (ShardRouter::MarginalGain): seeds and
  // inactive users answer 0.0 locally, no RPC.
  if (x >= num_users_ || is_seed_[x] || au_[x] == 0) return 0.0;
  return RemoteGain(x);
}

Status RemoteShardRouter::CommitSeed(NodeId x) {
  INFLUMAX_RETURN_IF_ERROR(CheckNotPoisoned());
  if (x >= num_users_ || is_seed_[x]) return Status::OK();
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    BufferWriter request;
    EncodeCommit(CommitRequest{x}, &request);
    std::vector<std::uint8_t> payload;
    if (Status st = CallSlot(s, MsgType::kCommit, request, MsgType::kCommitOk,
                             &payload);
        !st.ok()) {
      // Some slots may have applied the commit, some not: the fold chain
      // would mix seed sets, so the session is poisoned until
      // ResetSession()/Refresh() rebuilds a consistent one. Degradation
      // is a refusal, never a partial answer.
      poisoned_ = st;
      return st;
    }
  }
  is_seed_[x] = 1;
  committed_.push_back(x);
  return Status::OK();
}

Result<double> RemoteShardRouter::SpreadOf(std::span<const NodeId> seeds) {
  // Theorem 3 telescopes, exactly as ShardRouter::SpreadOf.
  INFLUMAX_RETURN_IF_ERROR(ResetSession());
  double total = 0.0;
  for (NodeId seed : seeds) {
    Result<double> gain = MarginalGain(seed);
    if (!gain.ok()) return gain.status();
    total += gain.value();
    INFLUMAX_RETURN_IF_ERROR(CommitSeed(seed));
  }
  return total;
}

Status RemoteShardRouter::PrefetchGains(const std::vector<NodeId>& nodes) {
  for (std::size_t begin = 0; begin < nodes.size();
       begin += kFoldBatchChunk) {
    const std::size_t end = std::min(nodes.size(), begin + kFoldBatchChunk);
    FoldBatchRequest batch;
    batch.nodes.assign(nodes.begin() + static_cast<std::ptrdiff_t>(begin),
                       nodes.begin() + static_cast<std::ptrdiff_t>(end));
    batch.accs.assign(end - begin, 0.0);
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      BufferWriter request;
      EncodeFoldBatch(batch, &request);
      std::vector<std::uint8_t> payload;
      INFLUMAX_RETURN_IF_ERROR(CallSlot(s, MsgType::kFoldBatch, request,
                                        MsgType::kFoldBatchOk, &payload));
      BufferReader reader(payload);
      Result<FoldBatchResponse> resp = DecodeFoldBatchOk(&reader);
      if (!resp.ok()) return resp.status();
      if (resp->accs.size() != batch.accs.size()) {
        return Status::Corruption(
            "fold batch: " + std::to_string(resp->accs.size()) +
            " accumulators returned for " +
            std::to_string(batch.accs.size()) + " nodes");
      }
      batch.accs = std::move(resp->accs);
    }
    for (std::size_t i = 0; i < batch.nodes.size(); ++i) {
      prefetch_gain_[batch.nodes[i]] = batch.accs[i];
      prefetch_valid_[batch.nodes[i]] = 1;
    }
  }
  return Status::OK();
}

Result<SnapshotSeedSelection> RemoteShardRouter::TopKSeeds(
    NodeId k, double spread_budget) {
  INFLUMAX_RETURN_IF_ERROR(ResetSession());

  // Prefetch the CELF initial pass: every active non-seed's gain via one
  // batched fold chain per slot (seeds answer 0.0 from the local guard,
  // as in ShardRouter). Each node's fold is independent, so batching
  // changes round trips, never bits.
  std::vector<NodeId> nodes;
  for (NodeId x = 0; x < num_users_; ++x) {
    if (au_[x] != 0 && !is_seed_[x]) nodes.push_back(x);
  }
  std::fill(prefetch_valid_.begin(), prefetch_valid_.end(), 0);
  INFLUMAX_RETURN_IF_ERROR(PrefetchGains(nodes));
  prefetch_commits_ = committed_.size();

  // The shared CELF driver, serial (workers = 1): the same initial pass
  // over active users, heap build order, and consumption discipline as
  // every other caller, so seeds, gains, and evaluation counts are
  // bit-identical to ShardRouter::TopKSeeds. Network errors cannot
  // propagate out of the driver's callbacks, so they stick in net_error:
  // gains degrade to 0.0 (terminating the greedy via the gain <= 0
  // break) and the error — not a partial selection — is returned.
  SnapshotSeedSelection selection;
  Status net_error;
  RunCelfTopK(
      k, spread_budget, /*num_workers=*/1, num_users_,
      [](std::size_t total, const auto& body) {
        for (std::size_t i = 0; i < total; ++i) body(std::size_t{0}, i);
      },
      [this](NodeId x) { return au_[x] != 0; },
      [&](NodeId x) -> double {
        if (!net_error.ok()) return 0.0;
        if (x >= num_users_ || is_seed_[x] || au_[x] == 0) return 0.0;
        if (prefetch_valid_[x] && committed_.size() == prefetch_commits_) {
          return prefetch_gain_[x];
        }
        Result<double> gain = RemoteGain(x);
        if (!gain.ok()) {
          net_error = gain.status();
          return 0.0;
        }
        return gain.value();
      },
      [&](NodeId x) {
        if (!net_error.ok()) return;
        if (Status st = CommitSeed(x); !st.ok()) net_error = st;
      },
      &heap_, &memo_gain_, &memo_stamp_, &batch_, &gains_, &selection);
  if (!net_error.ok()) return net_error;
  return selection;
}

Status RemoteShardRouter::ResetSession() {
  for (Slot& slot : slots_) {
    if (!slot.hello_done) continue;
    BufferWriter empty;
    std::vector<std::uint8_t> payload;
    if (Status st = DoRequest(slot, MsgType::kReset, empty, MsgType::kResetOk,
                              &payload, RpcDeadline());
        !st.ok()) {
      // Dropping the connection is an equivalent reset: the reconnect
      // replays the (now empty) commit list onto a fresh server session.
      DropConn(slot);
    }
  }
  committed_.clear();
  is_seed_ = is_frozen_;
  poisoned_ = Status::OK();
  return Status::OK();
}

Result<bool> RemoteShardRouter::Refresh() {
  const std::uint64_t before = generation_;
  INFLUMAX_RETURN_IF_ERROR(ConnectAll(0));
  return generation_ != before;
}

std::vector<ReplicaHealth> RemoteShardRouter::ProbeReplicas() {
  std::vector<ReplicaHealth> out;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    for (std::size_t r = 0; r < slots_[s].replicas.size(); ++r) {
      ReplicaHealth health;
      health.slot = s;
      health.replica = r;
      // A fresh connection per probe: the health of a replica is "can a
      // NEW client use it", not "is my cached socket still warm".
      const std::uint64_t budget_ms =
          options_.rpc_deadline_ms != 0 ? options_.rpc_deadline_ms
          : options_.connect_timeout_ms != 0 ? options_.connect_timeout_ms
                                             : 2000;
      const Deadline deadline = Deadline::AfterMs(budget_ms);
      const RemoteEndpoint& ep = slots_[s].replicas[r];
      Result<TcpConn> conn = TcpConn::Connect(ep.host, ep.port, deadline);
      if (conn.ok()) {
        Frame frame;
        frame.header.type = static_cast<std::uint8_t>(MsgType::kPing);
        frame.header.deadline_us = deadline.remaining_us();
        if (SendFrame(conn.value(), std::move(frame), deadline).ok()) {
          Result<Frame> resp = RecvFrame(conn.value(), deadline);
          if (resp.ok() &&
              resp->header.type == static_cast<std::uint8_t>(MsgType::kPong)) {
            BufferReader reader(resp->payload);
            Result<PongResponse> pong = DecodePong(&reader);
            if (pong.ok()) {
              health.healthy = true;
              health.generation = pong->generation;
              health.sessions_active = pong->sessions_active;
              health.metrics_port = pong->metrics_port;
            }
          }
        }
      }
      out.push_back(health);
    }
  }
  return out;
}

}  // namespace influmax
