#ifndef INFLUMAX_NET_SOCKET_H_
#define INFLUMAX_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/timer.h"

namespace influmax {

/// Thin RAII wrappers over POSIX TCP sockets (docs/networking.md).
///
/// Error taxonomy — the part that matters for robustness: every failure
/// a different replica might not share (refused/reset/timed-out
/// connections, a peer gone mid-stream, a deadline hit while blocked)
/// maps to Status::Unavailable, the transient-network class
/// IsTransientError treats as retryable; programming-level socket
/// errors map to IoError. The distinction drives the failover loop in
/// RemoteShardRouter: Unavailable means "try the next replica",
/// anything deterministic surfaces to the caller.
///
/// All blocking waits are poll(2)-based against a common/timer.h
/// Deadline, so one deadline bounds a whole connect + send + recv
/// sequence instead of resetting per call.

/// A connected TCP stream. Move-only; the destructor closes. Abort() is
/// the thread-safe cancel: it shuts the socket down (waking any blocked
/// poll on another thread with "connection lost") without racing the
/// owner's close — chaos tests use it as the "replica dies mid-request"
/// lever.
class TcpConn {
 public:
  TcpConn() = default;
  ~TcpConn() { Close(); }

  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Connects to host:port (numeric IPv4 or a resolvable name) within
  /// `deadline`. TCP_NODELAY is set — frames are request/response
  /// sized, Nagle only adds latency.
  static Result<TcpConn> Connect(const std::string& host, int port,
                                 const Deadline& deadline);

  bool valid() const { return fd_ >= 0; }

  /// Sends exactly `bytes` or fails: Unavailable on peer loss/deadline
  /// (with the byte offset reached), IoError otherwise.
  Status SendAll(const void* data, std::size_t bytes,
                 const Deadline& deadline);

  /// Receives exactly `bytes` or fails; `*received` (optional) reports
  /// how many bytes arrived before the failure so framing errors can
  /// name the exact stream offset.
  Status RecvAll(void* data, std::size_t bytes, const Deadline& deadline,
                 std::size_t* received = nullptr);

  /// Receives whatever is available, up to `max_bytes` (at least one
  /// byte, or 0 on orderly peer close). The HTTP metrics listener uses
  /// it — HTTP has no length prefix to RecvAll against.
  Result<std::size_t> RecvSome(void* data, std::size_t max_bytes,
                               const Deadline& deadline);

  /// Shuts down both directions without releasing the fd. Safe to call
  /// from another thread while the owner is blocked in Send/Recv.
  void Abort();

  void Close();

  int fd() const { return fd_; }

 private:
  friend class TcpListener;  // Accept constructs the connection

  explicit TcpConn(int fd) : fd_(fd) {}

  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1. Move-only. Close() (or
/// Abort() from another thread) wakes a blocked Accept with
/// Unavailable.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on loopback `port`; 0 picks an ephemeral port
  /// (read it back from port() — tests and the tools print it).
  static Result<TcpListener> Bind(int port);

  bool valid() const { return fd_ >= 0; }
  int port() const { return port_; }

  /// Accepts one connection within `deadline` (Unavailable on timeout
  /// or an aborted listener).
  Result<TcpConn> Accept(const Deadline& deadline);

  /// Thread-safe wake for a blocked Accept; the listener stays
  /// constructed but permanently refuses.
  void Abort();

  void Close();

 private:
  TcpListener(int fd, int port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  int port_ = 0;
};

}  // namespace influmax

#endif  // INFLUMAX_NET_SOCKET_H_
