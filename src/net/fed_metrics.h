#ifndef INFLUMAX_NET_FED_METRICS_H_
#define INFLUMAX_NET_FED_METRICS_H_

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "net/socket.h"

namespace influmax {

/// Fleet metrics federation (docs/observability.md): `serve_shards
/// --connect` discovers every replica's /metrics port from its pong
/// (PongResponse::metrics_port, wire v2), scrapes them all on demand,
/// and re-exposes one fleet-wide Prometheus endpoint with per-replica
/// `instance` labels — so one scrape config covers the whole fleet and
/// per-replica skew is a label filter away.

/// One scrape target: a replica's metrics listener plus the label value
/// identifying it ("host:rpc_port" — unique per replica by
/// construction).
struct FleetTarget {
  std::string host;
  int port = 0;          ///< the replica's /metrics HTTP port
  std::string instance;  ///< instance label value in the merged output
};

/// Minimal HTTP/1.0 GET over TcpConn: connects, requests `path`, reads
/// to connection close, and returns the body of a 200 response.
/// Unavailable on connect/transport/deadline failure or a non-200
/// status. Exactly the client the shard server's HandleMetricsConn
/// serves.
Result<std::string> HttpGetBody(const std::string& host, int port,
                                const std::string& path,
                                const Deadline& deadline);

/// Merges per-replica Prometheus exposition bodies into one, injecting
/// `instance="<label>"` into every sample line. `# HELP` / `# TYPE`
/// comment lines are emitted once (first instance wins); sample lines
/// keep their relative order per instance.
std::string MergePrometheusBodies(
    const std::vector<std::pair<std::string, std::string>>& bodies);

/// The fleet-wide Prometheus endpoint: a loopback HTTP listener that
/// scrapes every target on each GET /metrics and serves the merged
/// exposition. Scrapes are on-demand (no background poller): a fleet
/// view is only as fresh as its request, and an idle endpoint costs
/// nothing. A target that fails to scrape degrades to a
/// `# fleet scrape failed` comment instead of failing the whole page.
/// /healthz reports the target count. Serial request handling, same
/// rationale as the shard server's metrics loop.
class FleetMetricsServer {
 public:
  /// Binds loopback `port` (0 = ephemeral) and starts serving.
  static Result<std::unique_ptr<FleetMetricsServer>> Start(
      int port, std::vector<FleetTarget> targets);

  ~FleetMetricsServer();

  FleetMetricsServer(const FleetMetricsServer&) = delete;
  FleetMetricsServer& operator=(const FleetMetricsServer&) = delete;

  int port() const { return port_; }
  std::size_t num_targets() const { return targets_.size(); }

  /// Graceful shutdown; idempotent (also run by the destructor).
  void Stop();

 private:
  FleetMetricsServer() = default;

  void ServeLoop();
  void HandleConn(TcpConn conn);

  std::vector<FleetTarget> targets_;
  TcpListener listener_;
  int port_ = 0;
  std::thread thread_;
  std::mutex stop_mu_;
  bool stopping_ = false;  ///< guarded by stop_mu_
};

}  // namespace influmax

#endif  // INFLUMAX_NET_FED_METRICS_H_
