#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace influmax {
namespace {

/// The transient-network errno class: failures a different replica (or
/// a later retry) might not share. Everything else on a socket is
/// treated as a local/programming problem.
bool IsTransientErrno(int err) {
  return err == ECONNREFUSED || err == ECONNRESET || err == ETIMEDOUT ||
         err == EPIPE || err == ENETUNREACH || err == EHOSTUNREACH ||
         err == ECONNABORTED || err == ENOTCONN;
}

Status ErrnoStatus(const std::string& op, int err) {
  const std::string msg = op + ": " + std::strerror(err);
  return IsTransientErrno(err) ? Status::Unavailable(msg)
                               : Status::IoError(msg);
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)", errno);
  }
  return Status::OK();
}

/// Waits for `events` on `fd` until the deadline. Unavailable on
/// timeout; IoError on poll failure. POLLERR/POLLHUP are left for the
/// subsequent recv/send to diagnose (they read the real errno).
Status PollWait(int fd, short events, const Deadline& deadline,
                const char* what) {
  for (;;) {
    struct pollfd pfd { fd, events, 0 };
    int timeout_ms = -1;
    if (!deadline.infinite()) {
      const std::uint64_t rem = deadline.remaining_ms();
      if (rem == 0) {
        return Status::Unavailable(std::string(what) + ": deadline expired");
      }
      timeout_ms = rem > 1u << 30 ? (1 << 30) : static_cast<int>(rem);
    }
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      if (deadline.expired()) {
        return Status::Unavailable(std::string(what) + ": deadline expired");
      }
      continue;  // clamped slice of a huge deadline elapsed; wait again
    }
    if (errno == EINTR) continue;
    return ErrnoStatus(std::string(what) + ": poll", errno);
  }
}

}  // namespace

TcpConn::TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpConn> TcpConn::Connect(const std::string& host, int port,
                                 const Deadline& deadline) {
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    struct addrinfo hints {};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 ||
        res == nullptr) {
      return Status::Unavailable("connect: cannot resolve '" + host + "'");
    }
    addr.sin_addr =
        reinterpret_cast<struct sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  TcpConn conn(fd);
  if (Status st = SetNonBlocking(fd); !st.ok()) return st;
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));

  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) return ErrnoStatus("connect", errno);
    INFLUMAX_RETURN_IF_ERROR(PollWait(fd, POLLOUT, deadline, "connect"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return ErrnoStatus("getsockopt(SO_ERROR)", errno);
    }
    if (err != 0) return ErrnoStatus("connect", err);
  }
  return conn;
}

Status TcpConn::SendAll(const void* data, std::size_t bytes,
                        const Deadline& deadline) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < bytes) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE -> Unavailable,
    // not kill the serving process with SIGPIPE.
    const ssize_t n =
        ::send(fd_, p + sent, bytes - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      INFLUMAX_RETURN_IF_ERROR(PollWait(fd_, POLLOUT, deadline, "send"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Status st = ErrnoStatus("send", n < 0 ? errno : EPIPE);
    return st.code() == StatusCode::kUnavailable
               ? Status::Unavailable(st.message() + " after " +
                                     std::to_string(sent) + " of " +
                                     std::to_string(bytes) + " bytes")
               : st;
  }
  return Status::OK();
}

Status TcpConn::RecvAll(void* data, std::size_t bytes, const Deadline& deadline,
                        std::size_t* received) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  if (received != nullptr) *received = 0;
  while (got < bytes) {
    const ssize_t n = ::recv(fd_, p + got, bytes - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      if (received != nullptr) *received = got;
      continue;
    }
    if (n == 0) {
      // Orderly shutdown mid-read: the peer died (or was killed)
      // between frames or inside one — the caller knows which from the
      // offset.
      return Status::Unavailable("connection closed by peer after " +
                                 std::to_string(got) + " of " +
                                 std::to_string(bytes) + " bytes");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      INFLUMAX_RETURN_IF_ERROR(PollWait(fd_, POLLIN, deadline, "recv"));
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("recv", errno);
  }
  return Status::OK();
}

Result<std::size_t> TcpConn::RecvSome(void* data, std::size_t max_bytes,
                                      const Deadline& deadline) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data, max_bytes, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      INFLUMAX_RETURN_IF_ERROR(PollWait(fd_, POLLIN, deadline, "recv"));
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("recv", errno);
  }
}

void TcpConn::Abort() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpConn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpListener> TcpListener::Bind(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  TcpListener listener(fd, 0);
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  if (Status st = SetNonBlocking(fd); !st.ok()) return st;

  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return ErrnoStatus("bind", errno);
  }
  if (::listen(fd, 64) < 0) return ErrnoStatus("listen", errno);

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    return ErrnoStatus("getsockname", errno);
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<TcpConn> TcpListener::Accept(const Deadline& deadline) {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      TcpConn conn(fd);
      if (Status st = SetNonBlocking(fd); !st.ok()) return st;
      const int nodelay = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
      return conn;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      INFLUMAX_RETURN_IF_ERROR(PollWait(fd_, POLLIN, deadline, "accept"));
      continue;
    }
    if (errno == EINTR) continue;
    // An aborted (shutdown) listener reports EINVAL on Linux — that is
    // the orderly "stop accepting" path, not an I/O fault.
    if (errno == EINVAL) {
      return Status::Unavailable("accept: listener shut down");
    }
    return ErrnoStatus("accept", errno);
  }
}

void TcpListener::Abort() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace influmax
